"""Service mode: the unchanged protocol stack behind a real asyncio service.

The packages below run the *same* consensus/txn/sharding code that the
discrete-event simulator runs — through the runtime seam
(:mod:`repro.runtime`) — as wall-clock asyncio processes on localhost:

* :mod:`repro.service.frames` — length-prefixed pickle frames over TCP.
* :mod:`repro.service.socketnet` — :class:`SocketNetwork`, the wall-clock
  transport implementing the existing ``Network`` send/broadcast surface.
* :mod:`repro.service.shardnode` — one process per shard: an
  :class:`~repro.runtime.wallclock.AsyncioRuntime` driving an unchanged
  :class:`~repro.consensus.cluster.ConsensusCluster`.
* :mod:`repro.service.gateway` — the HTTP/JSON gateway (submit, status,
  balance, health) and the 2PC coordination it drives across shards.
* :mod:`repro.service.serve` — the ``repro-serve`` console script booting an
  N-shard cluster.
* :mod:`repro.service.client` — a small blocking HTTP client and workload
  replay driver used by tests and ``bench_service``.

Sim mode stays the differential oracle: the same seed + recorded workload
replayed through the gateway must produce the same committed transactions
and final balances as the simulated run (see
``tests/test_service_differential.py``).
"""

__all__ = ["ServiceCluster"]


def __getattr__(name: str):
    # Lazy so ``python -m repro.service.serve`` does not import serve twice
    # (once as a submodule here, once as __main__).
    if name == "ServiceCluster":
        from repro.service.serve import ServiceCluster
        return ServiceCluster
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
