"""``repro-serve``: boot an N-shard wall-clock cluster on localhost.

One process per shard (``multiprocessing`` spawn context — specs are plain
dicts, never live objects) plus the gateway in the parent process.  The
lifecycle is::

    repro-serve --shards 2 --committee 4 --protocol AHL --port 8080
    {"event": "ready", "endpoint": "http://127.0.0.1:8080", ...}
    ...
    SIGTERM / SIGINT
    {"event": "drained", "submitted": N, "committed": C, ...}  → exit 0

Shutdown is graceful: admissions stop first (new ``POST /tx`` gets 503),
in-flight transactions drain up to ``--drain-timeout`` seconds, shard
processes are asked to exit over their frame links, and only stragglers are
terminated.  The machine-readable stdout lines are what the shutdown tests
and the CI smoke job consume.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import multiprocessing
import signal
import socket
from typing import Any, Dict, List, Optional

from repro.runtime.wallclock import AsyncioRuntime
from repro.service.gateway import GatewayHttp, GatewayService
from repro.service.shardnode import KIND_SHUTDOWN, run_shard_node


def _free_port(host: str = "127.0.0.1") -> int:
    """Ask the kernel for a currently-free port (good enough for localhost)."""
    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


class ServiceCluster:
    """An N-shard cluster: shard processes + gateway, one object to boot/stop."""

    def __init__(self, num_shards: int = 2, committee_size: int = 4,
                 protocol: str = "AHL", seed: int = 0,
                 benchmark: str = "smallbank", num_keys: int = 10_000,
                 http_host: str = "127.0.0.1", http_port: int = 0,
                 max_inflight: int = 256, prepare_timeout: float = 5.0,
                 consensus_overrides: Optional[Dict[str, Any]] = None) -> None:
        self.num_shards = num_shards
        self.committee_size = committee_size
        self.protocol = protocol
        self.seed = seed
        self.benchmark = benchmark
        self.num_keys = num_keys
        self.http_host = http_host
        self.http_port = http_port
        self.max_inflight = max_inflight
        self.prepare_timeout = prepare_timeout
        self.consensus_overrides = dict(consensus_overrides or {})
        self.runtime: Optional[AsyncioRuntime] = None
        self.service: Optional[GatewayService] = None
        self.http: Optional[GatewayHttp] = None
        self.processes: List[multiprocessing.process.BaseProcess] = []
        self.shard_ports: List[int] = []

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self.runtime = AsyncioRuntime(loop=loop, seed=self.seed)
        self.service = GatewayService(
            self.runtime, self.num_shards, benchmark=self.benchmark,
            num_keys=self.num_keys, max_inflight=self.max_inflight,
            prepare_timeout=self.prepare_timeout)
        gateway_port = await self.service.start(0)
        self.shard_ports = [_free_port() for _ in range(self.num_shards)]
        ctx = multiprocessing.get_context("spawn")
        for shard_id, port in enumerate(self.shard_ports):
            spec = {
                "shard_id": shard_id,
                "num_shards": self.num_shards,
                "committee_size": self.committee_size,
                "protocol": self.protocol,
                "seed": self.seed,
                "benchmark": self.benchmark,
                "num_keys": self.num_keys,
                "port": port,
                "gateway_host": "127.0.0.1",
                "gateway_port": gateway_port,
                "consensus_overrides": self.consensus_overrides,
            }
            process = ctx.Process(target=run_shard_node, args=(spec,), daemon=True)
            process.start()
            self.processes.append(process)
            self.service.add_shard(shard_id, "127.0.0.1", port)
        self.http = GatewayHttp(self.service, self.http_host, self.http_port)
        self.http_port = await self.http.start()

    async def wait_ready(self, timeout: float = 60.0) -> None:
        assert self.service is not None
        await self.service.wait_ready(timeout)

    @property
    def endpoint(self) -> str:
        return f"http://{self.http_host}:{self.http_port}"

    async def stop(self, timeout: float = 5.0) -> None:
        if self.http is not None:
            await self.http.close()
        if self.service is not None:
            for shard_id in range(self.num_shards):
                if shard_id not in self.service._down:
                    self.service._send_frame(shard_id, KIND_SHUTDOWN, None)
            deadline = asyncio.get_running_loop().time() + timeout
            while (any(p.is_alive() for p in self.processes)
                   and asyncio.get_running_loop().time() < deadline):
                await asyncio.sleep(0.05)
            await self.service.close()
        for process in self.processes:
            if process.is_alive():
                process.terminate()
            process.join(timeout=1.0)


# ----------------------------------------------------------------- console
def _parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve the sharded-blockchain stack as a localhost cluster.")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--committee", type=int, default=4)
    parser.add_argument("--protocol", default="AHL")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--benchmark", default="smallbank",
                        choices=("smallbank", "kvstore"))
    parser.add_argument("--num-keys", type=int, default=10_000)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="HTTP port (0 picks a free one; printed on ready)")
    parser.add_argument("--max-inflight", type=int, default=256)
    parser.add_argument("--prepare-timeout", type=float, default=5.0)
    parser.add_argument("--drain-timeout", type=float, default=10.0)
    return parser.parse_args(argv)


async def _amain(args: argparse.Namespace) -> int:
    cluster = ServiceCluster(
        num_shards=args.shards, committee_size=args.committee,
        protocol=args.protocol, seed=args.seed, benchmark=args.benchmark,
        num_keys=args.num_keys, http_host=args.host, http_port=args.port,
        max_inflight=args.max_inflight, prepare_timeout=args.prepare_timeout)
    await cluster.start()
    try:
        await cluster.wait_ready()
    except TimeoutError as exc:
        print(json.dumps({"event": "failed", "error": str(exc)}), flush=True)
        await cluster.stop()
        return 1
    print(json.dumps({
        "event": "ready",
        "endpoint": cluster.endpoint,
        "shard_pids": [process.pid for process in cluster.processes],
        "shards": args.shards,
        "committee": args.committee,
        "protocol": args.protocol,
        "seed": args.seed,
        "benchmark": args.benchmark,
    }), flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)
    await stop.wait()
    assert cluster.service is not None
    summary = await cluster.service.drain(args.drain_timeout)
    await cluster.stop()
    print(json.dumps({"event": "drained", **summary}), flush=True)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    return asyncio.run(_amain(_parse_args(argv)))


if __name__ == "__main__":
    raise SystemExit(main())
