"""Length-prefixed pickle frames over asyncio streams.

The wire format is a 4-byte big-endian length followed by a pickle of the
payload — the same envelope the scale-out engine uses for its barrier
batches, here applied to live TCP connections between the gateway and the
shard node processes.  Pickle (rather than JSON) because the payloads are
the protocol's own dataclasses (``Message`` carrying ``Transaction`` /
``TransactionReceipt`` objects), and the service trusts its peers: every
endpoint of a frame connection is a process this deployment spawned on
localhost.  The *external* client surface (the HTTP gateway) speaks JSON
only.
"""

from __future__ import annotations

import asyncio
import pickle
import struct
from typing import Any, Optional

#: Refuse frames above this size — a corrupted length prefix must not make
#: the receiver try to allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class FrameError(Exception):
    """A malformed or oversized frame."""


async def read_frame(reader: asyncio.StreamReader) -> Optional[Any]:
    """Read one frame; returns the unpickled payload, or None on clean EOF."""
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise FrameError("connection closed mid-frame") from exc
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} cap")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid-frame") from exc
    return pickle.loads(body)


async def write_frame(writer: asyncio.StreamWriter, payload: Any) -> None:
    """Pickle ``payload`` and write it as one frame (waits for the drain)."""
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES} cap")
    writer.write(_LEN.pack(len(body)) + body)
    await writer.drain()
