"""A small blocking HTTP client for the gateway, plus the replay driver.

Tests, the differential oracle and ``bench_service`` talk to the gateway
through this module — stdlib ``http.client`` only, one connection per
request (the gateway answers ``Connection: close``).

:func:`replay_through_gateway` is the service half of the differential
oracle: it takes a :class:`~repro.workloads.generator.WorkloadReplay`
(a recorded workload) and pushes every entry through ``POST /tx?wait=1``
one at a time.  Serial submission makes the committed set and the final
balances timing-independent — the same recorded invocations applied in the
same order abort/commit on state alone — which is exactly what lets the
wall-clock run be compared bit-for-bit against the simulated one.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, List, Optional, Tuple


class ServiceHTTPError(Exception):
    """A non-2xx gateway answer, carrying the status and decoded body."""

    def __init__(self, status: int, body: Dict[str, Any]) -> None:
        super().__init__(f"HTTP {status}: {body.get('error', body)}")
        self.status = status
        self.body = body


class ServiceClient:
    """Blocking JSON client for one gateway endpoint."""

    def __init__(self, endpoint: str, timeout: float = 60.0) -> None:
        endpoint = endpoint.rstrip("/")
        if endpoint.startswith("http://"):
            endpoint = endpoint[len("http://"):]
        self.host, _, port = endpoint.partition(":")
        self.port = int(port or 80)
        self.timeout = timeout

    def request(self, method: str, path: str,
                body: Optional[Dict[str, Any]] = None) -> Tuple[int, Dict[str, Any]]:
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=self.timeout)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            decoded = json.loads(raw.decode()) if raw else {}
            return response.status, decoded
        finally:
            connection.close()

    # ------------------------------------------------------------ endpoints
    def submit(self, function: str, args: Dict[str, Any],
               client_id: str = "client", wait: bool = False,
               timeout: Optional[float] = None) -> Dict[str, Any]:
        path = "/tx"
        if wait:
            path += f"?wait=1&timeout={timeout if timeout is not None else self.timeout}"
        status, body = self.request("POST", path, {
            "function": function, "args": args, "client_id": client_id})
        if status not in (200, 202):
            raise ServiceHTTPError(status, body)
        return body

    def tx_status(self, tx_id: str) -> Tuple[int, Dict[str, Any]]:
        return self.request("GET", f"/tx/{tx_id}")

    def balance(self, key: str) -> Any:
        status, body = self.request("GET", f"/balance/{key}")
        if status != 200:
            raise ServiceHTTPError(status, body)
        return body["balance"]

    def health(self) -> Dict[str, Any]:
        status, body = self.request("GET", "/health")
        if status != 200:
            raise ServiceHTTPError(status, body)
        return body

    def wait_healthy(self, timeout: float = 60.0) -> Dict[str, Any]:
        """Poll ``/health`` until every shard is up (boot barrier for tests)."""
        deadline = time.monotonic() + timeout
        last: Dict[str, Any] = {}
        while time.monotonic() < deadline:
            try:
                last = self.health()
                if last.get("status") == "ok":
                    return last
            except (ServiceHTTPError, OSError, ConnectionError):
                pass
            time.sleep(0.2)
        raise TimeoutError(f"gateway never became healthy: {last}")


def replay_through_gateway(client: ServiceClient, replay: Any,
                           wait: bool = True,
                           retry_overload: bool = True) -> List[Dict[str, Any]]:
    """Push a recorded workload through the gateway, one entry at a time.

    Returns one result dict per entry (the gateway's JSON answer).  A 429
    (window full — only possible with ``wait=False``) is retried after the
    advertised backoff rather than dropped, so the replayed history stays
    complete.
    """
    results: List[Dict[str, Any]] = []
    for entry in replay.entries:
        while True:
            try:
                result = client.submit(entry["function"], entry["args"],
                                       client_id=entry.get("client_id", "replay"),
                                       wait=wait)
                break
            except ServiceHTTPError as exc:
                if retry_overload and exc.status == 429:
                    time.sleep(float(exc.body.get("retry_after", 1)) if
                               isinstance(exc.body, dict) and
                               "retry_after" in exc.body else 0.5)
                    continue
                raise
        results.append(result)
    return results
