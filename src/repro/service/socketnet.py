"""``SocketNetwork`` — the existing ``Network`` surface over real TCP.

A :class:`SocketNetwork` is a :class:`~repro.sim.network.Network` whose
destinations come in two flavours:

* **local** nodes (registered in this process, e.g. a shard's whole
  committee) are delivered exactly as the in-memory network delivers them —
  modelled latency, loss and partition injection included, scheduled on the
  wall-clock runtime;
* **remote** peers (added with :meth:`add_peer`, e.g. the gateway seen from
  a shard process) receive the ``Message`` as a length-prefixed pickle frame
  over a persistent TCP connection; the real network supplies the latency.

Because the class *is* a ``Network``, the unchanged consensus stack uses it
without knowing which flavour a destination is: ``send``/``broadcast``
simply route per destination.  Peer liveness is surfaced through
``on_peer_down`` — the gateway uses it to fail over in-flight 2PC instead of
hanging when a shard process dies (each outgoing link watches for EOF, so a
peer's death is noticed as soon as its kernel sends FIN/RST, not at the next
write).
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.runtime.wallclock import AsyncioRuntime
from repro.service.frames import FrameError, read_frame, write_frame
from repro.sim.latency import LatencyModel
from repro.sim.network import Message, Network

#: How many times an outgoing link retries its initial connect before the
#: peer is declared down.  30 x 0.2s covers a shard process's startup.
CONNECT_RETRIES = 30
CONNECT_RETRY_DELAY = 0.2

_CLOSE = object()


class _PeerLink:
    """One persistent outgoing connection: a send queue plus a writer task."""

    def __init__(self, net: "SocketNetwork", addr: Tuple[str, int]) -> None:
        self.net = net
        self.addr = addr
        self.down = False
        self.queue: asyncio.Queue = asyncio.Queue()
        self._task = net.runtime.loop.create_task(self._run())
        self._writer: Optional[asyncio.StreamWriter] = None

    def enqueue(self, message: Message) -> None:
        if self.down:
            self.net.stats.messages_dropped += 1
            return
        self.queue.put_nowait(message)

    async def _run(self) -> None:
        last_error: Exception = ConnectionError("connect never attempted")
        for _ in range(CONNECT_RETRIES):
            try:
                reader, writer = await asyncio.open_connection(*self.addr)
                break
            except OSError as exc:
                last_error = exc
                await asyncio.sleep(CONNECT_RETRY_DELAY)
        else:
            self._fail(last_error)
            return
        self._writer = writer
        # The peer never writes back on this connection, so any read result
        # (EOF included) means the peer went away — the fastest death signal
        # TCP offers.
        eof_watch = asyncio.ensure_future(reader.read(1))
        try:
            while True:
                get = asyncio.ensure_future(self.queue.get())
                done, _ = await asyncio.wait(
                    {get, eof_watch}, return_when=asyncio.FIRST_COMPLETED)
                if eof_watch in done:
                    get.cancel()
                    raise ConnectionResetError(f"peer {self.addr} closed the connection")
                message = get.result()
                if message is _CLOSE:
                    eof_watch.cancel()
                    break
                await write_frame(writer, message)
        except (ConnectionError, OSError, FrameError) as exc:
            self._fail(exc)
            return
        finally:
            if not eof_watch.done():
                eof_watch.cancel()
        writer.close()

    def _fail(self, exc: Exception) -> None:
        if self.down:
            return
        self.down = True
        dropped = self.queue.qsize()
        while not self.queue.empty():
            self.queue.get_nowait()
        self.net.stats.messages_dropped += dropped
        if self._writer is not None:
            self._writer.close()
        self.net._peer_link_down(self.addr, exc)

    async def close(self) -> None:
        self.queue.put_nowait(_CLOSE)
        try:
            await asyncio.wait_for(self._task, timeout=2.0)
        except (asyncio.TimeoutError, asyncio.CancelledError):
            self._task.cancel()


class SocketNetwork(Network):
    """The ``Network`` surface with remote peers behind TCP frames."""

    def __init__(self, runtime: AsyncioRuntime,
                 latency_model: Optional[LatencyModel] = None,
                 listen_host: str = "127.0.0.1") -> None:
        super().__init__(runtime, latency_model)
        self.listen_host = listen_host
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._peers: Dict[int, Tuple[str, int]] = {}
        self._links: Dict[Tuple[str, int], _PeerLink] = {}
        self._inbound: List[asyncio.StreamWriter] = []
        #: Called with (node_ids, exception) when a peer address is declared
        #: unreachable; every node id mapped to that address is included.
        self.on_peer_down: Optional[Callable[[List[int], Exception], None]] = None

    # ----------------------------------------------------------- lifecycle
    async def start(self, port: int = 0) -> int:
        """Listen for inbound frames; returns the bound port."""
        self._server = await asyncio.start_server(
            self._handle_inbound, self.listen_host, port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def close(self) -> None:
        for link in list(self._links.values()):
            await link.close()
        for writer in self._inbound:
            writer.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # --------------------------------------------------------------- peers
    def add_peer(self, node_id: int, host: str, port: int) -> None:
        """Route ``node_id`` over TCP to ``host:port`` (one link per address)."""
        self._peers[node_id] = (host, port)

    def is_remote(self, node_id: int) -> bool:
        return node_id in self._peers and node_id not in self._nodes

    def peer_down(self, node_id: int) -> bool:
        addr = self._peers.get(node_id)
        link = self._links.get(addr) if addr is not None else None
        return link is not None and link.down

    def _link_for(self, node_id: int) -> _PeerLink:
        addr = self._peers[node_id]
        link = self._links.get(addr)
        if link is None:
            link = _PeerLink(self, addr)
            self._links[addr] = link
        return link

    def _peer_link_down(self, addr: Tuple[str, int], exc: Exception) -> None:
        node_ids = sorted(nid for nid, peer in self._peers.items() if peer == addr)
        if self.on_peer_down is not None:
            self.on_peer_down(node_ids, exc)

    # ------------------------------------------------------------- sending
    def send(self, src: int, dst: int, message: Message) -> None:
        if self.is_remote(dst):
            message.sender = src
            message.recipient = dst
            message.sent_at = self.runtime.now
            message.msg_id = next(self._msg_counter)
            self.stats.record_send(message)
            self._link_for(dst).enqueue(message)
            return
        super().send(src, dst, message)

    def broadcast(self, src: int, dst_ids: Iterable[int], message: Message) -> None:
        if isinstance(dst_ids, (set, frozenset)):
            dst_ids = sorted(dst_ids)
        dst_ids = list(dst_ids)
        local = [dst for dst in dst_ids if not self.is_remote(dst)]
        if local:
            super().broadcast(src, local, message)
        for dst in dst_ids:
            if self.is_remote(dst):
                copy = Message(sender=src, kind=message.kind, payload=message.payload,
                               size_bytes=message.size_bytes, channel=message.channel)
                self.send(src, dst, copy)

    # ------------------------------------------------------------ inbound
    async def _handle_inbound(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        self._inbound.append(writer)
        try:
            while True:
                message = await read_frame(reader)
                if message is None:
                    break
                # Re-stamp with this process's counter so remote ids can
                # never collide with locally-stamped ones.
                message.msg_id = next(self._msg_counter)
                self._deliver(message)
        except (FrameError, ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            pass  # loop shutdown mid-read; swallowing keeps teardown quiet
        finally:
            if writer in self._inbound:
                self._inbound.remove(writer)
            writer.close()
