"""The HTTP/JSON gateway: trusted 2PC over live shard processes.

Two halves:

* :class:`GatewayService` — the coordination plane.  It drives the *same*
  :class:`~repro.txn.coordinator.TwoPhaseCommitCoordinator` and
  :class:`~repro.core.splitters.TransactionSplitter` machinery that
  ``ShardedBlockchain`` drives in sim mode (the trusted
  ``use_reference_committee=False`` configuration of Figure 13): begin →
  per-shard prepares → votes → commit/abort decisions → acks.  The only
  difference is the transport — receipts arrive as ``svc-receipts`` frames
  from shard processes instead of ``CommitEvent`` callbacks — and the
  clock, which is the :class:`~repro.runtime.wallclock.AsyncioRuntime`.
  The coordinator itself never notices: deadlines are data and ``now`` is a
  parameter (see the runtime-neutrality note in ``txn/coordinator.py``).

* :class:`GatewayHttp` — a deliberately small HTTP/1.1 front end (stdlib
  only; the container has no aiohttp) exposing::

      POST /tx            submit {"function", "args", "client_id"?}; ?wait=1 blocks
      GET  /tx/{id}       coordinator record for a transaction
      GET  /balance/{key} world-state read from the key's home shard
      GET  /health        shard liveness, in-flight window, totals

  Admission control is a bounded in-flight window: past ``max_inflight``
  the gateway answers ``429`` with ``Retry-After`` instead of queueing
  unboundedly.  A dead shard (EOF on its frame link) turns requests that
  touch it into ``503`` — and aborts the undecided in-flight transactions
  that were waiting on it, so nothing hangs.
"""

from __future__ import annotations

import asyncio
import itertools
import json
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.splitters import splitter_for
from repro.ledger.transaction import Transaction, TransactionReceipt, TxStatus
from repro.runtime.wallclock import AsyncioRuntime
from repro.service.shardnode import (
    GATEWAY_NODE_ID, KIND_BALANCE_QUERY, KIND_BALANCE_REPLY, KIND_PING,
    KIND_PONG, KIND_RECEIPTS, KIND_SUBMIT, shard_agent_id,
)
from repro.service.socketnet import SocketNetwork
from repro.sim.network import Message, REQUEST_CHANNEL
from repro.txn.coordinator import (
    DistributedTxOutcome, DistributedTxPhase, DistributedTxRecord,
    TwoPhaseCommitCoordinator,
)
from repro.workloads.generator import shard_of_key
from repro.workloads.kvstore import KVStoreWorkload
from repro.workloads.smallbank import SmallbankWorkload

#: How many times a lost prepare or decision is re-driven before the
#: gateway gives up (aborts the prepare, force-acks the decision).
MAX_REDRIVES = 3


class GatewayError(Exception):
    """Base for admission failures; carries the HTTP status to answer with."""

    status = 500
    retry_after: Optional[int] = None


class Overloaded(GatewayError):
    """The bounded in-flight window is full."""

    status = 429
    retry_after = 1


class Draining(GatewayError):
    """The gateway is shutting down and admits no new transactions."""

    status = 503


class ShardDown(GatewayError):
    """The transaction touches a shard whose process is unreachable."""

    status = 503


class BadTransaction(GatewayError):
    """The request body does not describe a valid chaincode invocation."""

    status = 400


class _GatewayAgent:
    """The gateway's node in the SocketNetwork (receives shard frames)."""

    def __init__(self, service: "GatewayService") -> None:
        self.node_id = GATEWAY_NODE_ID
        self.service = service

    def deliver(self, message: Message) -> None:
        if message.kind == KIND_RECEIPTS:
            for receipt in message.payload["receipts"]:
                self.service._on_receipt(receipt)
        elif message.kind == KIND_BALANCE_REPLY:
            self.service._on_balance_reply(message.payload)
        elif message.kind == KIND_PONG:
            self.service._on_pong(message.payload)


class GatewayService:
    """Trusted 2PC coordination over live shards, behind the runtime seam."""

    def __init__(self, runtime: AsyncioRuntime, num_shards: int,
                 benchmark: str = "smallbank", num_keys: int = 10_000,
                 max_inflight: int = 256, prepare_timeout: float = 5.0,
                 listen_host: str = "127.0.0.1") -> None:
        self.runtime = runtime
        self.num_shards = num_shards
        self.benchmark = benchmark
        self.num_keys = num_keys
        self.max_inflight = max_inflight
        self.prepare_timeout = prepare_timeout
        self.network = SocketNetwork(runtime, listen_host=listen_host)
        self.network.on_peer_down = self._on_peer_down
        self.coordinator = TwoPhaseCommitCoordinator(
            use_reference_committee=False, retain_records=True,
            prepare_timeout=prepare_timeout)
        self.splitter = splitter_for(benchmark)
        if benchmark == "smallbank":
            self.chaincode = SmallbankWorkload(num_accounts=num_keys).chaincode
        else:
            self.chaincode = KVStoreWorkload(num_keys=num_keys).chaincode
        self._agent = _GatewayAgent(self)
        self.network.register(self._agent)
        self.draining = False
        #: tx_id -> future resolved with the record at completion (None for
        #: fire-and-forget submissions; the key set is the in-flight window).
        self._inflight: Dict[str, Optional[asyncio.Future]] = {}
        #: receipt watchers, keyed by the *wire* transaction's id (prepare /
        #: decision / single-shard tx), plus the parent tx owning each watch
        #: so a finished record's stale watchers can be reclaimed.
        self._watchers: Dict[str, Callable[[TransactionReceipt], None]] = {}
        self._watch_owner: Dict[str, str] = {}
        self._record_watches: Dict[str, Set[str]] = {}
        self._decisions_sent: Dict[str, Set[int]] = {}
        self._down: Dict[int, str] = {}
        self._pongs: Dict[int, Dict[str, Any]] = {}
        self._balance_waiters: Dict[int, asyncio.Future] = {}
        self._query_counter = itertools.count()
        self._drained = asyncio.Event()

    # ----------------------------------------------------------- lifecycle
    async def start(self, port: int = 0) -> int:
        """Start the frame listener; returns its bound port."""
        return await self.network.start(port)

    def add_shard(self, shard_id: int, host: str, port: int) -> None:
        self.network.add_peer(shard_agent_id(shard_id), host, port)

    async def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until every shard has answered a ping (boot barrier)."""
        deadline = self.runtime.now + timeout
        while self.runtime.now < deadline:
            self.ping_shards()
            await asyncio.sleep(0.2)
            if len(self._pongs) >= self.num_shards:
                return
        missing = [s for s in range(self.num_shards) if s not in self._pongs]
        raise TimeoutError(f"shards {missing} never answered a ping")

    async def drain(self, timeout: float = 10.0) -> Dict[str, Any]:
        """Stop admitting, wait for in-flight work, report what happened."""
        self.draining = True
        if self._inflight:
            try:
                await asyncio.wait_for(self._drained.wait(), timeout)
            except asyncio.TimeoutError:
                pass
        stats = self.coordinator.stats
        return {
            "submitted": stats.started,
            "committed": stats.committed,
            "aborted": stats.aborted,
            "abandoned_in_flight": len(self._inflight),
        }

    async def close(self) -> None:
        await self.network.close()

    # ------------------------------------------------------------- health
    def ping_shards(self) -> None:
        for shard_id in range(self.num_shards):
            if shard_id not in self._down:
                self._send_frame(shard_id, KIND_PING, {"ping_id": shard_id})

    def _on_pong(self, payload: Dict[str, Any]) -> None:
        self._pongs[payload["shard_id"]] = payload

    def shard_state(self, shard_id: int) -> str:
        if shard_id in self._down:
            return "down"
        return "up" if shard_id in self._pongs else "starting"

    def health(self) -> Dict[str, Any]:
        shards = {str(s): self.shard_state(s) for s in range(self.num_shards)}
        if self.draining:
            status = "draining"
        elif any(state != "up" for state in shards.values()):
            status = "degraded"
        else:
            status = "ok"
        stats = self.coordinator.stats
        return {
            "status": status,
            "shards": shards,
            "in_flight": len(self._inflight),
            "max_inflight": self.max_inflight,
            "submitted": stats.started,
            "committed": stats.committed,
            "aborted": stats.aborted,
        }

    # ---------------------------------------------------------- submission
    def shard_of(self, key: str) -> int:
        return shard_of_key(key, self.num_shards)

    def build_transaction(self, function: str, args: Dict[str, Any],
                          client_id: str = "http") -> Transaction:
        try:
            return self.chaincode.new_transaction(
                function, dict(args), client_id=client_id,
                submitted_at=self.runtime.now)
        except Exception as exc:
            raise BadTransaction(f"invalid invocation: {exc}") from exc

    def shards_for(self, tx: Transaction) -> List[int]:
        try:
            return self.splitter.shards_touched(tx, self.shard_of)
        except Exception:
            shards = {self.shard_of(key) for key in tx.keys}
            return sorted(shards) if shards else [0]

    def submit_transaction(self, tx: Transaction,
                           wait: bool = False) -> Tuple[DistributedTxRecord,
                                                        Optional[asyncio.Future]]:
        """Admit and coordinate one transaction; mirrors sim trusted mode."""
        if self.draining:
            raise Draining("gateway is draining")
        if len(self._inflight) >= self.max_inflight:
            raise Overloaded(f"{len(self._inflight)} transactions in flight")
        shards = self.shards_for(tx)
        dead = [shard for shard in shards if shard in self._down]
        if dead:
            raise ShardDown(f"shard {dead[0]} is down: {self._down[dead[0]]}")
        record = self.coordinator.begin(tx, shards, now=self.runtime.now)
        future = self.runtime.loop.create_future() if wait else None
        self._inflight[tx.tx_id] = future
        if record.is_cross_shard:
            self.coordinator.mark_begin_executed(tx.tx_id, now=self.runtime.now)
            self._send_prepares(record)
        else:
            self._submit_single_shard(record)
        return record, future

    # ------------------------------------------------------- single shard tx
    def _submit_single_shard(self, record: DistributedTxRecord) -> None:
        shard_id = record.shards[0]
        tx = record.transaction
        self.coordinator.mark_begin_executed(tx.tx_id, now=self.runtime.now)

        def on_receipt(receipt: TransactionReceipt) -> None:
            ok = receipt.status is TxStatus.COMMITTED
            self.coordinator.record_prepare_vote(
                tx.tx_id, shard_id, ok, now=self.runtime.now, reason=receipt.error)
            self.coordinator.record_commit_ack(tx.tx_id, shard_id, now=self.runtime.now)
            if record.phase is DistributedTxPhase.DONE:
                self._finish(record)

        self._watch(record, tx.tx_id, on_receipt)
        self._send_transactions(shard_id, [tx])
        self.runtime.schedule(self.prepare_timeout,
                              self._check_single_deadline, tx.tx_id)

    def _check_single_deadline(self, tx_id: str) -> None:
        record = self.coordinator.records.get(tx_id)
        if (record is None or record.outcome is not DistributedTxOutcome.PENDING
                or record.phase is DistributedTxPhase.DONE or record.prepare_votes):
            return
        shard_id = record.shards[0]
        if shard_id in self._down:
            return  # _on_peer_down already aborted it
        if record.redrives >= MAX_REDRIVES:
            self.coordinator.record_prepare_vote(
                tx_id, shard_id, False, now=self.runtime.now,
                reason="prepare timeout")
            self.coordinator.record_commit_ack(tx_id, shard_id, now=self.runtime.now)
            if record.phase is DistributedTxPhase.DONE:
                self._finish(record)
            return
        self.coordinator.mark_redriven(record)
        record.prepare_deadline = self.runtime.now + self.prepare_timeout
        self._send_transactions(shard_id, [record.transaction])
        self.runtime.schedule(self.prepare_timeout, self._check_single_deadline, tx_id)

    # -------------------------------------------------------- cross shard tx
    def _send_prepares(self, record: DistributedTxRecord,
                       only_shards: Optional[List[int]] = None) -> None:
        prepares = self.splitter.prepare_transactions(record.transaction, self.shard_of)
        if only_shards is not None:
            prepares = {shard: tx for shard, tx in prepares.items()
                        if shard in only_shards}
        for prep_shard, prepare_tx in prepares.items():
            self._watch(record, prepare_tx.tx_id,
                        self._make_prepare_watcher(record, prep_shard))
            self._send_transactions(prep_shard, [prepare_tx])
        self.runtime.schedule(self.prepare_timeout,
                              self._check_prepare_deadline, record.tx_id)

    def _make_prepare_watcher(self, record: DistributedTxRecord, shard_id: int):
        def on_receipt(receipt: TransactionReceipt) -> None:
            ok = receipt.status is TxStatus.COMMITTED
            self._handle_prepare_outcome(record, shard_id, ok, receipt.error)
        return on_receipt

    def _handle_prepare_outcome(self, record: DistributedTxRecord, shard_id: int,
                                ok: bool, reason: Optional[str]) -> None:
        before = record.outcome
        self.coordinator.record_prepare_vote(
            record.tx_id, shard_id, ok, now=self.runtime.now, reason=reason)
        if (record.outcome is not DistributedTxOutcome.PENDING
                and before is DistributedTxOutcome.PENDING):
            self._send_decision(record)

    def _check_prepare_deadline(self, tx_id: str) -> None:
        record = self.coordinator.records.get(tx_id)
        if (record is None or record.outcome is not DistributedTxOutcome.PENDING
                or record.phase is DistributedTxPhase.DONE):
            return
        if record.prepare_deadline is None or record.prepare_deadline > self.runtime.now:
            delay = (record.prepare_deadline - self.runtime.now
                     if record.prepare_deadline is not None else self.prepare_timeout)
            self.runtime.schedule(max(delay, 1e-3),
                                  self._check_prepare_deadline, tx_id)
            return
        missing = [shard for shard in record.shards
                   if shard not in record.prepare_votes and shard not in self._down]
        if not missing:
            return  # peer-down handling owns the down shards' votes
        if record.redrives >= MAX_REDRIVES:
            before = record.outcome
            for shard in missing:
                self.coordinator.record_prepare_vote(
                    tx_id, shard, False, now=self.runtime.now,
                    reason="prepare timeout")
            if (record.outcome is not DistributedTxOutcome.PENDING
                    and before is DistributedTxOutcome.PENDING):
                self._send_decision(record)
            return
        self.coordinator.mark_redriven(record)
        record.prepare_deadline = self.runtime.now + self.prepare_timeout
        self._send_prepares(record, only_shards=missing)

    def _send_decision(self, record: DistributedTxRecord,
                       only_shards: Optional[List[int]] = None) -> None:
        committed = record.outcome is DistributedTxOutcome.COMMITTED
        if committed:
            per_shard = self.splitter.commit_transactions(record.transaction, self.shard_of)
        else:
            per_shard = self.splitter.abort_transactions(record.transaction, self.shard_of)
        if only_shards is not None:
            per_shard = {shard: tx for shard, tx in per_shard.items()
                         if shard in only_shards}
        sent = self._decisions_sent.setdefault(record.tx_id, set())
        for dec_shard, decision_tx in per_shard.items():
            if dec_shard in self._down:
                # Unreachable: count the ack as forced, exactly what
                # _on_peer_down does for decisions already in flight.
                self.coordinator.record_commit_ack(record.tx_id, dec_shard,
                                                   now=self.runtime.now)
                continue
            sent.add(dec_shard)
            self._watch(record, decision_tx.tx_id,
                        self._make_decision_watcher(record, dec_shard))
            self._send_transactions(dec_shard, [decision_tx])
        if record.all_acks_in and record.phase is DistributedTxPhase.DONE:
            self._finish(record)
            return
        self.runtime.schedule(self.prepare_timeout,
                              self._check_decision_deadline, record.tx_id)

    def _make_decision_watcher(self, record: DistributedTxRecord, shard_id: int):
        def on_receipt(receipt: TransactionReceipt) -> None:
            self.coordinator.record_commit_ack(record.tx_id, shard_id,
                                               now=self.runtime.now)
            if record.all_acks_in:
                self._finish(record)
        return on_receipt

    def _check_decision_deadline(self, tx_id: str) -> None:
        record = self.coordinator.records.get(tx_id)
        if (record is None or record.phase is DistributedTxPhase.DONE
                or record.outcome is DistributedTxOutcome.PENDING):
            return
        missing = [shard for shard in record.shards
                   if shard not in record.commit_acks]
        live = [shard for shard in missing if shard not in self._down]
        if not live or record.redrives >= MAX_REDRIVES:
            # Decision delivery is idempotent shard-side; past the re-drive
            # budget (or with only dead shards missing) the acks are forced
            # so the client's future resolves rather than hangs.
            for shard in missing:
                self.coordinator.record_commit_ack(tx_id, shard, now=self.runtime.now)
            if record.phase is DistributedTxPhase.DONE:
                self._finish(record)
            return
        self.coordinator.mark_redriven(record)
        self._send_decision(record, only_shards=live)

    # ----------------------------------------------------------- completion
    def _watch(self, record: DistributedTxRecord, wire_tx_id: str,
               callback: Callable[[TransactionReceipt], None]) -> None:
        self._watchers[wire_tx_id] = callback
        self._watch_owner[wire_tx_id] = record.tx_id
        self._record_watches.setdefault(record.tx_id, set()).add(wire_tx_id)

    def _on_receipt(self, receipt: TransactionReceipt) -> None:
        watcher = self._watchers.pop(receipt.tx_id, None)
        if watcher is None:
            return
        parent = self._watch_owner.pop(receipt.tx_id, None)
        if parent is not None:
            watches = self._record_watches.get(parent)
            if watches is not None:
                watches.discard(receipt.tx_id)
        watcher(receipt)

    def _finish(self, record: DistributedTxRecord) -> None:
        for wire_tx_id in self._record_watches.pop(record.tx_id, ()):
            self._watchers.pop(wire_tx_id, None)
            self._watch_owner.pop(wire_tx_id, None)
        self._decisions_sent.pop(record.tx_id, None)
        future = self._inflight.pop(record.tx_id, None)
        if future is not None and not future.done():
            future.set_result(record)
        if self.draining and not self._inflight:
            self._drained.set()

    # ------------------------------------------------------------ transport
    def _send_transactions(self, shard_id: int, transactions: List[Transaction]) -> None:
        self._send_frame(shard_id, KIND_SUBMIT, tuple(transactions),
                         size_bytes=512 * len(transactions))

    def _send_frame(self, shard_id: int, kind: str, payload: Any,
                    size_bytes: int = 512) -> None:
        message = Message(sender=GATEWAY_NODE_ID, kind=kind, payload=payload,
                          size_bytes=size_bytes, channel=REQUEST_CHANNEL)
        self.network.send(GATEWAY_NODE_ID, shard_agent_id(shard_id), message)

    # ------------------------------------------------------------ peer death
    def _on_peer_down(self, node_ids: List[int], exc: Exception) -> None:
        shards = sorted(node_id - shard_agent_id(0) for node_id in node_ids
                        if shard_agent_id(0) <= node_id < GATEWAY_NODE_ID)
        for shard in shards:
            self._down.setdefault(shard, str(exc) or type(exc).__name__)
        for record in list(self.coordinator.records.values()):
            if record.phase is DistributedTxPhase.DONE:
                continue
            if not any(shard in record.shards for shard in shards):
                continue
            if record.outcome is DistributedTxOutcome.PENDING:
                before = record.outcome
                for shard in shards:
                    if shard in record.shards and shard not in record.prepare_votes:
                        self.coordinator.record_prepare_vote(
                            record.tx_id, shard, False, now=self.runtime.now,
                            reason=f"shard {shard} down")
                if (record.outcome is not DistributedTxOutcome.PENDING
                        and before is DistributedTxOutcome.PENDING):
                    self._send_decision(record)
            else:
                for shard in shards:
                    if shard in record.shards and shard not in record.commit_acks:
                        self.coordinator.record_commit_ack(
                            record.tx_id, shard, now=self.runtime.now)
                if record.phase is DistributedTxPhase.DONE:
                    self._finish(record)

    # -------------------------------------------------------------- queries
    def status(self, tx_id: str) -> Optional[DistributedTxRecord]:
        return self.coordinator.records.get(tx_id)

    async def balance(self, key: str, timeout: float = 5.0) -> Any:
        shard = self.shard_of(key)
        if shard in self._down:
            raise ShardDown(f"shard {shard} is down: {self._down[shard]}")
        query_id = next(self._query_counter)
        future = self.runtime.loop.create_future()
        self._balance_waiters[query_id] = future
        try:
            self._send_frame(shard, KIND_BALANCE_QUERY,
                             {"query_id": query_id, "key": key})
            return await asyncio.wait_for(future, timeout)
        finally:
            self._balance_waiters.pop(query_id, None)

    def _on_balance_reply(self, payload: Dict[str, Any]) -> None:
        future = self._balance_waiters.get(payload["query_id"])
        if future is not None and not future.done():
            future.set_result(payload["value"])


# --------------------------------------------------------------------- HTTP
def record_json(record: DistributedTxRecord) -> Dict[str, Any]:
    return {
        "tx_id": record.tx_id,
        "outcome": record.outcome.value,
        "phase": record.phase.value,
        "shards": list(record.shards),
        "abort_reason": record.abort_reason,
        "latency": record.latency,
    }


class GatewayHttp:
    """A minimal HTTP/1.1 JSON server in front of a :class:`GatewayService`."""

    def __init__(self, service: GatewayService, host: str = "127.0.0.1",
                 port: int = 8080, wait_timeout: float = 30.0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.wait_timeout = wait_timeout
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> int:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------- plumbing
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is not None:
                method, path, query, body = request
                status, payload, extra = await self._route(method, path, query, body)
                await self._respond(writer, status, payload, extra)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", 0) or 0)
        if length:
            body = await reader.readexactly(length)
        path, _, query_string = target.partition("?")
        query: Dict[str, str] = {}
        for pair in query_string.split("&"):
            if pair:
                key, _, value = pair.partition("=")
                query[key] = value
        return method.upper(), path, query, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Dict[str, Any],
                       extra_headers: Optional[Dict[str, str]] = None) -> None:
        reasons = {200: "OK", 202: "Accepted", 400: "Bad Request",
                   404: "Not Found", 429: "Too Many Requests",
                   500: "Internal Server Error", 503: "Service Unavailable",
                   504: "Gateway Timeout"}
        body = json.dumps(payload).encode()
        lines = [f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}",
                 "Content-Type: application/json",
                 f"Content-Length: {len(body)}",
                 "Connection: close"]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + body)
        await writer.drain()

    # -------------------------------------------------------------- routing
    async def _route(self, method: str, path: str, query: Dict[str, str],
                     body: bytes):
        try:
            if method == "POST" and path == "/tx":
                return await self._post_tx(query, body)
            if method == "GET" and path.startswith("/tx/"):
                return self._get_tx(path[len("/tx/"):])
            if method == "GET" and path.startswith("/balance/"):
                return await self._get_balance(path[len("/balance/"):])
            if method == "GET" and path == "/health":
                return 200, self.service.health(), None
            return 404, {"error": f"no route for {method} {path}"}, None
        except GatewayError as exc:
            extra = ({"Retry-After": str(exc.retry_after)}
                     if exc.retry_after is not None else None)
            return exc.status, {"error": str(exc)}, extra
        except asyncio.TimeoutError:
            return 504, {"error": "timed out waiting for the transaction"}, None

    async def _post_tx(self, query: Dict[str, str], body: bytes):
        try:
            request = json.loads(body.decode() or "{}")
            function = request["function"]
            args = request.get("args", {})
        except (ValueError, KeyError) as exc:
            raise BadTransaction(f"malformed body: {exc}") from exc
        if not isinstance(args, dict):
            raise BadTransaction("args must be an object")
        tx = self.service.build_transaction(
            function, args, client_id=str(request.get("client_id", "http")))
        wait = query.get("wait") in ("1", "true")
        record, future = self.service.submit_transaction(tx, wait=wait)
        if not wait:
            return 202, {"tx_id": tx.tx_id, "outcome": record.outcome.value,
                         "shards": list(record.shards)}, None
        timeout = float(query.get("timeout", self.wait_timeout))
        record = await asyncio.wait_for(future, timeout)
        return 200, record_json(record), None

    def _get_tx(self, tx_id: str):
        record = self.service.status(tx_id)
        if record is None:
            return 404, {"error": f"unknown transaction {tx_id}"}, None
        return 200, record_json(record), None

    async def _get_balance(self, key: str):
        value = await self.service.balance(key)
        return 200, {"key": key, "balance": value}, None
