"""Versioned key-value world state.

Hyperledger models blockchain state as key-value tuples accessible to
chaincode during execution; each shard owns a disjoint partition of the key
space.  :class:`StateStore` provides the get/put/delete interface, version
counters (for write-conflict detection), snapshots (for shard state transfer
during reconfiguration) and simple usage statistics.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, NamedTuple, Optional, Tuple


class VersionedValue(NamedTuple):
    """A state value together with its version number.

    A ``NamedTuple`` rather than a dataclass: one is constructed per write
    and the chaincode write path is the hottest loop in block execution.
    """

    value: Any
    version: int


class StateStore:
    """A key-value store with per-key versions."""

    def __init__(self, shard_id: int = 0) -> None:
        self.shard_id = shard_id
        self._data: Dict[str, VersionedValue] = {}
        self.reads = 0
        self.writes = 0
        self.deletes = 0
        #: Lazily cached sum of per-entry serialised sizes (sans the fixed
        #: per-entry overhead).  Mutations only flip the dirty flag — a
        #: single attribute store — so the write hot path pays nothing;
        #: :meth:`size_bytes` rescans at most once per batch of mutations.
        self._raw_size = 0
        self._size_dirty = False

    # ------------------------------------------------------------------ basic
    def get(self, key: str, default: Any = None) -> Any:
        """Value stored at ``key``, or ``default``."""
        self.reads += 1
        entry = self._data.get(key)
        return entry.value if entry is not None else default

    def get_versioned(self, key: str) -> Optional[VersionedValue]:
        """Value and version, or None if absent."""
        self.reads += 1
        return self._data.get(key)

    def put(self, key: str, value: Any) -> int:
        """Store ``value`` at ``key``; returns the new version number."""
        self.writes += 1
        current = self._data.get(key)
        version = (current.version + 1) if current is not None else 1
        self._data[key] = VersionedValue(value=value, version=version)
        self._size_dirty = True
        return version

    def delete(self, key: str) -> bool:
        """Remove ``key``; returns True if it existed."""
        self.deletes += 1
        existed = self._data.pop(key, None) is not None
        if existed:
            self._size_dirty = True
        return existed

    def exists(self, key: str) -> bool:
        return key in self._data

    def version(self, key: str) -> int:
        """Version of ``key`` (0 if absent)."""
        entry = self._data.get(key)
        return entry.version if entry is not None else 0

    # ------------------------------------------------------------------ bulk
    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> Iterator[str]:
        return iter(self._data.keys())

    def items(self) -> Iterator[Tuple[str, Any]]:
        return ((key, entry.value) for key, entry in self._data.items())

    def snapshot(self) -> Dict[str, VersionedValue]:
        """A copy of the full state, used for shard state transfer."""
        return dict(self._data)

    def restore(self, snapshot: Dict[str, VersionedValue]) -> None:
        """Replace the state with a snapshot (new member joining a committee)."""
        self._data = dict(snapshot)
        self._size_dirty = True

    def size_bytes(self, per_entry_overhead: int = 64) -> int:
        """Rough serialised size, used to model state-transfer duration.

        Cached with dirty-tracking: repeated reads between mutations are
        O(1); a rescan happens at most once per batch of writes instead of
        on every call.
        """
        if self._size_dirty:
            self._raw_size = sum(
                len(key) + len(str(entry.value)) for key, entry in self._data.items()
            )
            self._size_dirty = False
        return self._raw_size + len(self._data) * per_entry_overhead
