"""Versioned key-value world state.

Hyperledger models blockchain state as key-value tuples accessible to
chaincode during execution; each shard owns a disjoint partition of the key
space.  :class:`StateStore` provides the get/put/delete interface, version
counters (for write-conflict detection), snapshots (for shard state transfer
during reconfiguration) and simple usage statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple


@dataclass(frozen=True)
class VersionedValue:
    """A state value together with its version number."""

    value: Any
    version: int


class StateStore:
    """A key-value store with per-key versions."""

    def __init__(self, shard_id: int = 0) -> None:
        self.shard_id = shard_id
        self._data: Dict[str, VersionedValue] = {}
        self.reads = 0
        self.writes = 0
        self.deletes = 0

    # ------------------------------------------------------------------ basic
    def get(self, key: str, default: Any = None) -> Any:
        """Value stored at ``key``, or ``default``."""
        self.reads += 1
        entry = self._data.get(key)
        return entry.value if entry is not None else default

    def get_versioned(self, key: str) -> Optional[VersionedValue]:
        """Value and version, or None if absent."""
        self.reads += 1
        return self._data.get(key)

    def put(self, key: str, value: Any) -> int:
        """Store ``value`` at ``key``; returns the new version number."""
        self.writes += 1
        current = self._data.get(key)
        version = (current.version + 1) if current is not None else 1
        self._data[key] = VersionedValue(value=value, version=version)
        return version

    def delete(self, key: str) -> bool:
        """Remove ``key``; returns True if it existed."""
        self.deletes += 1
        return self._data.pop(key, None) is not None

    def exists(self, key: str) -> bool:
        return key in self._data

    def version(self, key: str) -> int:
        """Version of ``key`` (0 if absent)."""
        entry = self._data.get(key)
        return entry.version if entry is not None else 0

    # ------------------------------------------------------------------ bulk
    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> Iterator[str]:
        return iter(self._data.keys())

    def items(self) -> Iterator[Tuple[str, Any]]:
        return ((key, entry.value) for key, entry in self._data.items())

    def snapshot(self) -> Dict[str, VersionedValue]:
        """A copy of the full state, used for shard state transfer."""
        return dict(self._data)

    def restore(self, snapshot: Dict[str, VersionedValue]) -> None:
        """Replace the state with a snapshot (new member joining a committee)."""
        self._data = dict(snapshot)

    def size_bytes(self, per_entry_overhead: int = 64) -> int:
        """Rough serialised size, used to model state-transfer duration."""
        total = 0
        for key, entry in self._data.items():
            total += len(key) + len(str(entry.value)) + per_entry_overhead
        return total
