"""Chains: the append-only BFT chain and the fork-capable Nakamoto chain."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import InvalidBlockError
from repro.ledger.block import Block, make_genesis_block


class Blockchain:
    """An append-only, fork-free chain as maintained by BFT committees.

    BFT consensus totally orders blocks, so the chain never forks; appending
    a block whose ``prev_hash`` or ``height`` does not extend the tip is an
    error.
    """

    def __init__(self, shard_id: int = 0, genesis: Optional[Block] = None) -> None:
        self.shard_id = shard_id
        self._blocks: List[Block] = [genesis or make_genesis_block(shard_id)]
        self._by_hash: Dict[str, Block] = {self._blocks[0].block_hash: self._blocks[0]}

    # ----------------------------------------------------------------- access
    @property
    def height(self) -> int:
        """Height of the tip block."""
        return self._blocks[-1].height

    @property
    def tip(self) -> Block:
        return self._blocks[-1]

    def __len__(self) -> int:
        return len(self._blocks)

    def block_at(self, height: int) -> Block:
        if not 0 <= height < len(self._blocks):
            raise InvalidBlockError(f"no block at height {height}")
        return self._blocks[height]

    def block_by_hash(self, block_hash: str) -> Optional[Block]:
        return self._by_hash.get(block_hash)

    def blocks(self) -> List[Block]:
        """A copy of the chain, genesis first."""
        return list(self._blocks)

    def total_transactions(self) -> int:
        return sum(len(block) for block in self._blocks)

    # ----------------------------------------------------------------- append
    def append(self, block: Block) -> None:
        """Append ``block`` to the tip; validates height, hash pointer and Merkle root."""
        tip = self.tip
        if block.height != tip.height + 1:
            raise InvalidBlockError(
                f"expected height {tip.height + 1}, got {block.height}"
            )
        if block.prev_hash != tip.block_hash:
            raise InvalidBlockError("previous-hash pointer does not match the tip")
        if not block.verify_merkle_root():
            raise InvalidBlockError("merkle root does not match the block's transactions")
        self._blocks.append(block)
        self._by_hash[block.block_hash] = block

    def verify_chain(self) -> bool:
        """Re-validate every hash pointer in the chain."""
        for prev, current in zip(self._blocks, self._blocks[1:]):
            if current.prev_hash != prev.block_hash or current.height != prev.height + 1:
                return False
            if not current.verify_merkle_root():
                return False
        return True


@dataclass
class _ForkNode:
    block: Block
    depth: int
    children: List[str] = field(default_factory=list)


class ForkableChain:
    """A block tree with longest-chain selection, for PoET/PoET+.

    Nakamoto-style protocols fork when multiple leaders propose at roughly
    the same time; the fork is resolved in favour of the longest branch and
    blocks on losing branches become **stale blocks** — the quantity Figure 22
    reports.
    """

    def __init__(self, shard_id: int = 0) -> None:
        genesis = make_genesis_block(shard_id)
        self._nodes: Dict[str, _ForkNode] = {
            genesis.block_hash: _ForkNode(block=genesis, depth=0)
        }
        self._best_tip = genesis.block_hash
        self.shard_id = shard_id

    # ----------------------------------------------------------------- access
    @property
    def best_tip(self) -> Block:
        """Tip of the currently longest branch."""
        return self._nodes[self._best_tip].block

    @property
    def height(self) -> int:
        return self._nodes[self._best_tip].depth

    def contains(self, block_hash: str) -> bool:
        return block_hash in self._nodes

    def total_blocks(self) -> int:
        """All blocks ever added, including genesis and stale blocks."""
        return len(self._nodes)

    def main_chain(self) -> List[Block]:
        """Blocks on the longest branch, genesis first."""
        chain: List[Block] = []
        cursor: Optional[str] = self._best_tip
        while cursor is not None:
            node = self._nodes[cursor]
            chain.append(node.block)
            cursor = node.block.prev_hash if node.depth > 0 else None
            if cursor is not None and cursor not in self._nodes:
                break
        return list(reversed(chain))

    def stale_blocks(self) -> int:
        """Number of non-genesis blocks that are not on the main chain."""
        on_main = {block.block_hash for block in self.main_chain()}
        return sum(
            1 for block_hash in self._nodes
            if block_hash not in on_main
        )

    def stale_rate(self) -> float:
        """Stale blocks divided by total non-genesis blocks (Figure 22's metric)."""
        produced = self.total_blocks() - 1
        if produced <= 0:
            return 0.0
        return self.stale_blocks() / produced

    # ----------------------------------------------------------------- append
    def add_block(self, block: Block) -> bool:
        """Add a block extending any known block.

        Returns True if the block extended the main chain (i.e. became the
        new best tip), False if it created or extended a side branch.
        Raises :class:`InvalidBlockError` if the parent is unknown.
        """
        if block.block_hash in self._nodes:
            return False
        parent = self._nodes.get(block.prev_hash)
        if parent is None:
            raise InvalidBlockError("parent block is unknown")
        depth = parent.depth + 1
        self._nodes[block.block_hash] = _ForkNode(block=block, depth=depth)
        parent.children.append(block.block_hash)
        if depth > self._nodes[self._best_tip].depth:
            self._best_tip = block.block_hash
            return True
        return False
