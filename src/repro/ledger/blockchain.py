"""Chains: the append-only BFT chain and the fork-capable Nakamoto chain."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, InvalidBlockError
from repro.ledger.block import Block, BlockHeader, make_genesis_block


class Blockchain:
    """An append-only, fork-free chain as maintained by BFT committees.

    BFT consensus totally orders blocks, so the chain never forks; appending
    a block whose ``prev_hash`` or ``height`` does not extend the tip is an
    error.

    Two levers bound the per-append and per-replica cost for long runs:

    * ``append(block, verify_merkle=False)`` — the trusted-append fast path
      for blocks whose Merkle root was already agreed by consensus (the
      default re-verifies, which is what untrusted ingestion wants);
    * ``retention="headers"`` — keep every :class:`BlockHeader` (so hash
      pointers, heights and running totals remain exact) but only the most
      recent ``retain_recent`` full blocks, bounding replica memory by the
      in-flight window instead of the run length.

    ``total_transactions`` is a running counter maintained on append — the
    metrics path reads it per report, so it must not be O(chain).
    """

    #: Retention modes: "full" keeps every block; "headers" keeps all
    #: headers but only the ``retain_recent`` newest block bodies.
    RETENTION_MODES = ("full", "headers")

    def __init__(self, shard_id: int = 0, genesis: Optional[Block] = None,
                 retention: str = "full", retain_recent: int = 16) -> None:
        if retention not in self.RETENTION_MODES:
            raise ConfigurationError(f"unknown retention mode {retention!r}")
        if retain_recent < 1:
            raise ConfigurationError("retain_recent must be at least 1")
        self.shard_id = shard_id
        self.retention = retention
        self.retain_recent = retain_recent
        genesis = genesis or make_genesis_block(shard_id)
        self._headers: List[BlockHeader] = [genesis.header]
        #: height-keyed bodies; in "full" mode never evicted.
        self._bodies: "OrderedDict[int, Block]" = OrderedDict([(0, genesis)])
        self._height_by_hash: Dict[str, int] = {genesis.block_hash: 0}
        self._tip: Block = genesis
        self._total_transactions = len(genesis)

    # ----------------------------------------------------------------- access
    @property
    def height(self) -> int:
        """Height of the tip block."""
        return self._headers[-1].height

    @property
    def tip(self) -> Block:
        return self._tip

    def __len__(self) -> int:
        return len(self._headers)

    def header_at(self, height: int) -> BlockHeader:
        """Header at ``height`` — available at every height in both retention modes."""
        if not 0 <= height < len(self._headers):
            raise InvalidBlockError(f"no block at height {height}")
        return self._headers[height]

    def block_at(self, height: int) -> Block:
        if not 0 <= height < len(self._headers):
            raise InvalidBlockError(f"no block at height {height}")
        block = self._bodies.get(height)
        if block is None:
            raise InvalidBlockError(
                f"block body at height {height} was pruned "
                f"(header-only retention keeps the last {self.retain_recent}); "
                f"use header_at() for pruned heights"
            )
        return block

    def block_by_hash(self, block_hash: str) -> Optional[Block]:
        """Body of the committed block with this hash, or None if never committed.

        A hash that *was* committed but whose body was pruned under
        header-only retention raises :class:`InvalidBlockError` (mirroring
        :meth:`block_at`) instead of returning None — callers must be able
        to tell a bogus hash from a GC'd one.
        """
        height = self._height_by_hash.get(block_hash)
        if height is None:
            return None
        block = self._bodies.get(height)
        if block is None:
            raise InvalidBlockError(
                f"block {block_hash[:12]}… at height {height} was committed but "
                f"its body was pruned (header-only retention keeps the last "
                f"{self.retain_recent}); use header_at({height}) instead"
            )
        return block

    def blocks(self) -> List[Block]:
        """A copy of the retained full blocks, lowest height first.

        In "full" retention this is the whole chain (genesis first); in
        "headers" retention only the recent window of bodies is available.
        """
        return list(self._bodies.values())

    def headers(self) -> List[BlockHeader]:
        """A copy of every header, genesis first (both retention modes)."""
        return list(self._headers)

    def total_transactions(self) -> int:
        """Transactions committed on the chain (running counter, O(1))."""
        return self._total_transactions

    # ----------------------------------------------------------------- append
    def append(self, block: Block, verify_merkle: bool = True) -> None:
        """Append ``block`` to the tip; validates height, hash pointer and Merkle root.

        ``verify_merkle=False`` is the trusted-append fast path: the caller
        asserts the root was already checked (e.g. it was computed from the
        very transaction list the block carries, or a BFT quorum agreed on
        it).  Untrusted ingestion must keep the default.
        """
        tip = self._tip
        if block.height != tip.height + 1:
            raise InvalidBlockError(
                f"expected height {tip.height + 1}, got {block.height}"
            )
        if block.prev_hash != tip.block_hash:
            raise InvalidBlockError("previous-hash pointer does not match the tip")
        if verify_merkle and not block.verify_merkle_root():
            raise InvalidBlockError("merkle root does not match the block's transactions")
        self._headers.append(block.header)
        self._bodies[block.height] = block
        self._height_by_hash[block.block_hash] = block.height
        self._tip = block
        self._total_transactions += len(block)
        if self.retention == "headers":
            while len(self._bodies) > self.retain_recent:
                self._bodies.popitem(last=False)

    def verify_chain(self) -> bool:
        """Re-validate every hash pointer (headers) and every retained body's root."""
        return self.verify_suffix(0)

    def verify_suffix(self, from_height: int) -> bool:
        """Re-validate hash pointers from ``from_height`` to the tip only.

        The incremental form of :meth:`verify_chain`: a caller that already
        verified the chain up to ``from_height`` (and holds the hash it saw
        there) only needs the new suffix checked — O(blocks since last
        verify), not O(chain).  Checks every header link in
        ``[from_height, tip]`` plus the Merkle root of every *retained* body
        in that range.  ``from_height`` at or past the tip verifies nothing
        and returns True.
        """
        start = max(from_height, 0)
        for prev, current in zip(self._headers[start:], self._headers[start + 1:]):
            if current.prev_hash != prev.block_hash or current.height != prev.height + 1:
                return False
        for height in range(start, self.height + 1):
            block = self._bodies.get(height)
            if block is not None and not block.verify_merkle_root():
                return False
        return True


@dataclass
class _ForkNode:
    block: Block
    depth: int
    children: List[str] = field(default_factory=list)


class ForkableChain:
    """A block tree with longest-chain selection, for PoET/PoET+.

    Nakamoto-style protocols fork when multiple leaders propose at roughly
    the same time; the fork is resolved in favour of the longest branch and
    blocks on losing branches become **stale blocks** — the quantity Figure 22
    reports.
    """

    def __init__(self, shard_id: int = 0) -> None:
        genesis = make_genesis_block(shard_id)
        self._nodes: Dict[str, _ForkNode] = {
            genesis.block_hash: _ForkNode(block=genesis, depth=0)
        }
        self._best_tip = genesis.block_hash
        #: Hashes on the current main chain (genesis included).  Maintained
        #: incrementally by :meth:`add_block` — extending the tip is O(1) and
        #: a reorg costs O(reorg depth) — so ``stale_blocks``/``stale_rate``
        #: are O(1) reads in the fig21/fig22 PoET hot loop.
        self._on_main: set[str] = {genesis.block_hash}
        self.shard_id = shard_id

    # ----------------------------------------------------------------- access
    @property
    def best_tip(self) -> Block:
        """Tip of the currently longest branch."""
        return self._nodes[self._best_tip].block

    @property
    def height(self) -> int:
        return self._nodes[self._best_tip].depth

    def contains(self, block_hash: str) -> bool:
        return block_hash in self._nodes

    def total_blocks(self) -> int:
        """All blocks ever added, including genesis and stale blocks."""
        return len(self._nodes)

    def main_chain(self) -> List[Block]:
        """Blocks on the longest branch, genesis first."""
        chain: List[Block] = []
        cursor: Optional[str] = self._best_tip
        while cursor is not None:
            node = self._nodes[cursor]
            chain.append(node.block)
            cursor = node.block.prev_hash if node.depth > 0 else None
            if cursor is not None and cursor not in self._nodes:
                break
        return list(reversed(chain))

    def stale_blocks(self) -> int:
        """Number of non-genesis blocks that are not on the main chain (O(1))."""
        return len(self._nodes) - len(self._on_main)

    def stale_rate(self) -> float:
        """Stale blocks divided by total non-genesis blocks (Figure 22's metric)."""
        produced = self.total_blocks() - 1
        if produced <= 0:
            return 0.0
        return self.stale_blocks() / produced

    # ----------------------------------------------------------------- append
    def add_block(self, block: Block) -> bool:
        """Add a block extending any known block.

        Returns True if the block extended the main chain (i.e. became the
        new best tip), False if it created or extended a side branch.
        Raises :class:`InvalidBlockError` if the parent is unknown.
        """
        if block.block_hash in self._nodes:
            return False
        parent = self._nodes.get(block.prev_hash)
        if parent is None:
            raise InvalidBlockError("parent block is unknown")
        depth = parent.depth + 1
        self._nodes[block.block_hash] = _ForkNode(block=block, depth=depth)
        parent.children.append(block.block_hash)
        if depth > self._nodes[self._best_tip].depth:
            if block.prev_hash == self._best_tip:
                # Fast path: extending the current main chain.
                self._on_main.add(block.block_hash)
            else:
                self._reorg_to(block)
            self._best_tip = block.block_hash
            return True
        return False

    def _reorg_to(self, new_tip: Block) -> None:
        """Move the main-chain marker to the branch ending at ``new_tip``.

        Walks the new branch down to its junction with the current main
        chain, then retires the old branch back to that same junction — both
        walks are bounded by the reorg depth, not the chain length.
        """
        joining: List[str] = []
        cursor = new_tip.block_hash
        while cursor not in self._on_main:
            joining.append(cursor)
            node = self._nodes[cursor]
            if node.depth == 0:
                break
            cursor = node.block.prev_hash
        junction = cursor if cursor in self._on_main else None
        retiring = self._best_tip
        while retiring != junction and retiring in self._on_main:
            self._on_main.discard(retiring)
            node = self._nodes[retiring]
            if node.depth == 0:
                break
            retiring = node.block.prev_hash
        self._on_main.update(joining)
