"""Blocks and block headers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.crypto.hashing import digest_of
from repro.crypto.merkle import MerkleTree
from repro.ledger.transaction import Transaction

#: Previous-hash value of the genesis block.
GENESIS_PREV_HASH = "0" * 64


@dataclass(frozen=True)
class BlockHeader:
    """Header of a block: position in the chain plus commitments to its content."""

    height: int
    prev_hash: str
    merkle_root: str
    proposer: int
    view: int = 0
    timestamp: float = 0.0
    shard_id: int = 0

    @property
    def block_hash(self) -> str:
        """Digest of the header — the block identifier used by hash pointers."""
        return digest_of({
            "height": self.height,
            "prev_hash": self.prev_hash,
            "merkle_root": self.merkle_root,
            "proposer": self.proposer,
            "view": self.view,
            "timestamp": self.timestamp,
            "shard_id": self.shard_id,
        })


@dataclass(frozen=True)
class Block:
    """A block: header plus the ordered list of transactions it commits."""

    header: BlockHeader
    transactions: Tuple[Transaction, ...] = field(default_factory=tuple)

    @property
    def block_hash(self) -> str:
        return self.header.block_hash

    @property
    def height(self) -> int:
        return self.header.height

    @property
    def prev_hash(self) -> str:
        return self.header.prev_hash

    def __len__(self) -> int:
        return len(self.transactions)

    def verify_merkle_root(self) -> bool:
        """Check that the header's Merkle root matches the transaction list."""
        return MerkleTree([tx.digest for tx in self.transactions]).root == self.header.merkle_root


def build_block(height: int, prev_hash: str, transactions: Tuple[Transaction, ...],
                proposer: int, view: int = 0, timestamp: float = 0.0,
                shard_id: int = 0) -> Block:
    """Construct a block, computing the transaction Merkle root."""
    merkle_root = MerkleTree([tx.digest for tx in transactions]).root
    header = BlockHeader(
        height=height,
        prev_hash=prev_hash,
        merkle_root=merkle_root,
        proposer=proposer,
        view=view,
        timestamp=timestamp,
        shard_id=shard_id,
    )
    return Block(header=header, transactions=tuple(transactions))


def make_genesis_block(shard_id: int = 0) -> Block:
    """The genesis block of a shard's chain."""
    return build_block(
        height=0,
        prev_hash=GENESIS_PREV_HASH,
        transactions=(),
        proposer=-1,
        view=0,
        timestamp=0.0,
        shard_id=shard_id,
    )
