"""Blocks and block headers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.crypto.hashing import digest_of
from repro.crypto.merkle import MerkleTree
from repro.ledger.transaction import Transaction

#: Previous-hash value of the genesis block.
GENESIS_PREV_HASH = "0" * 64


@dataclass(frozen=True)
class BlockHeader:
    """Header of a block: position in the chain plus commitments to its content."""

    height: int
    prev_hash: str
    merkle_root: str
    proposer: int
    view: int = 0
    timestamp: float = 0.0
    shard_id: int = 0

    @property
    def block_hash(self) -> str:
        """Digest of the header — the block identifier used by hash pointers.

        Computed once and memoized: the chain consults the tip's hash on
        every append and every consumer of a :class:`CommitEvent` may re-read
        it, so re-hashing the header per access is pure waste.  Writing
        straight to ``__dict__`` sidesteps the frozen-dataclass
        ``__setattr__`` guard without weakening it for the declared fields.
        """
        cached = self.__dict__.get("_block_hash")
        if cached is None:
            cached = digest_of({
                "height": self.height,
                "prev_hash": self.prev_hash,
                "merkle_root": self.merkle_root,
                "proposer": self.proposer,
                "view": self.view,
                "timestamp": self.timestamp,
                "shard_id": self.shard_id,
            })
            self.__dict__["_block_hash"] = cached
        return cached


@dataclass(frozen=True)
class Block:
    """A block: header plus the ordered list of transactions it commits."""

    header: BlockHeader
    transactions: Tuple[Transaction, ...] = field(default_factory=tuple)

    @property
    def block_hash(self) -> str:
        return self.header.block_hash

    @property
    def height(self) -> int:
        return self.header.height

    @property
    def prev_hash(self) -> str:
        return self.header.prev_hash

    def __len__(self) -> int:
        return len(self.transactions)

    def verify_merkle_root(self) -> bool:
        """Check that the header's Merkle root matches the transaction list.

        The (immutable) outcome is memoized so repeated verification of the
        same block object — e.g. chain re-validation — hashes only once.
        """
        cached = self.__dict__.get("_merkle_ok")
        if cached is None:
            root = MerkleTree.from_leaves([tx.digest for tx in self.transactions]).root
            cached = root == self.header.merkle_root
            self.__dict__["_merkle_ok"] = cached
        return cached


def merkle_root_of(transactions: Tuple[Transaction, ...]) -> str:
    """Merkle root over a transaction list (one tree build)."""
    return MerkleTree.from_leaves([tx.digest for tx in transactions]).root


def build_block(height: int, prev_hash: str, transactions: Tuple[Transaction, ...],
                proposer: int, view: int = 0, timestamp: float = 0.0,
                shard_id: int = 0, merkle_root: Optional[str] = None) -> Block:
    """Construct a block, computing the transaction Merkle root.

    Pass ``merkle_root`` when the root over ``transactions`` is already known
    (e.g. re-chaining a block agreed by consensus) to skip rebuilding the
    tree — the single most frequent redundant hash in the commit hot path.
    """
    if merkle_root is None:
        merkle_root = merkle_root_of(transactions)
    header = BlockHeader(
        height=height,
        prev_hash=prev_hash,
        merkle_root=merkle_root,
        proposer=proposer,
        view=view,
        timestamp=timestamp,
        shard_id=shard_id,
    )
    return Block(header=header, transactions=tuple(transactions))


def make_genesis_block(shard_id: int = 0) -> Block:
    """The genesis block of a shard's chain."""
    return build_block(
        height=0,
        prev_hash=GENESIS_PREV_HASH,
        transactions=(),
        proposer=-1,
        view=0,
        timestamp=0.0,
        shard_id=shard_id,
    )
