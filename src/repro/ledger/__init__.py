"""Ledger substrate: transactions, blocks, chains, world state and chaincodes.

This is the Hyperledger-Fabric-like layer the paper's system is built on:
the blockchain state is modelled as key-value tuples, smart contracts
(*chaincodes*) read and write those tuples, transactions are batched into
hash-chained blocks, and each committee/shard maintains its own chain and
state partition.  A fork-capable chain variant supports the Nakamoto-style
PoET/PoET+ protocols, which need fork resolution and stale-block accounting.
"""

from repro.ledger.transaction import Transaction, TxStatus, TransactionReceipt
from repro.ledger.block import Block, BlockHeader, GENESIS_PREV_HASH, make_genesis_block
from repro.ledger.blockchain import Blockchain, ForkableChain
from repro.ledger.state import StateStore, VersionedValue
from repro.ledger.chaincode import Chaincode, ChaincodeRegistry, ExecutionEngine
from repro.ledger.index import LedgerIndex, RangeStats, rebuild_index, snapshot_diff

__all__ = [
    "Transaction",
    "TxStatus",
    "TransactionReceipt",
    "Block",
    "BlockHeader",
    "GENESIS_PREV_HASH",
    "make_genesis_block",
    "Blockchain",
    "ForkableChain",
    "StateStore",
    "VersionedValue",
    "Chaincode",
    "ChaincodeRegistry",
    "ExecutionEngine",
    "LedgerIndex",
    "RangeStats",
    "rebuild_index",
    "snapshot_diff",
]
