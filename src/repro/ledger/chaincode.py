"""Chaincode (smart contract) abstraction and execution engine.

A chaincode exposes named functions that read and write the key-value world
state.  The execution engine applies the transactions of a block sequentially
(blockchains execute transactions sequentially within a block — concurrency
only arises across shards, Section 6.1) and produces a receipt per
transaction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ChaincodeError
from repro.ledger.block import Block
from repro.ledger.state import StateStore
from repro.ledger.transaction import Transaction, TransactionReceipt, TxStatus


class Chaincode(ABC):
    """Base class for chaincodes.

    Subclasses implement :meth:`invoke`; :meth:`keys_touched` lets the
    sharded system route a transaction to the shards owning its keys without
    executing it.
    """

    #: Name under which the chaincode is registered.
    name: str = "chaincode"

    @abstractmethod
    def invoke(self, state: StateStore, function: str, args: Dict[str, Any]) -> Any:
        """Execute ``function(args)`` against ``state``; raise ChaincodeError to abort."""

    def keys_touched(self, function: str, args: Dict[str, Any]) -> Tuple[str, ...]:
        """State keys the invocation will read or write (used for routing and locking)."""
        return tuple(args.get("keys", ()))

    def new_transaction(self, function: str, args: Optional[Dict[str, Any]] = None,
                        client_id: str = "client", submitted_at: float = 0.0) -> Transaction:
        """Build a transaction invoking this chaincode."""
        args = args or {}
        return Transaction.create(
            chaincode=self.name,
            function=function,
            args=args,
            client_id=client_id,
            keys=self.keys_touched(function, args),
            submitted_at=submitted_at,
        )


@dataclass
class ChaincodeRegistry:
    """Maps chaincode names to instances (one registry per committee)."""

    chaincodes: Dict[str, Chaincode] = field(default_factory=dict)

    def register(self, chaincode: Chaincode) -> None:
        self.chaincodes[chaincode.name] = chaincode

    def get(self, name: str) -> Chaincode:
        try:
            return self.chaincodes[name]
        except KeyError as exc:
            raise ChaincodeError(f"unknown chaincode {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self.chaincodes


class ExecutionEngine:
    """Executes transactions and blocks against a state store."""

    def __init__(self, registry: ChaincodeRegistry, state: StateStore) -> None:
        self.registry = registry
        self.state = state
        self.executed_transactions = 0
        self.failed_transactions = 0

    def execute_transaction(self, tx: Transaction, block_height: Optional[int] = None,
                            shard_id: Optional[int] = None,
                            now: Optional[float] = None) -> TransactionReceipt:
        """Execute one transaction, returning a receipt (never raises for chaincode aborts)."""
        try:
            chaincode = self.registry.get(tx.chaincode)
            result = chaincode.invoke(self.state, tx.function, tx.args)
        except ChaincodeError as exc:
            self.failed_transactions += 1
            return TransactionReceipt(
                tx_id=tx.tx_id,
                status=TxStatus.FAILED,
                error=str(exc),
                block_height=block_height,
                shard_id=shard_id,
                committed_at=now,
            )
        self.executed_transactions += 1
        return TransactionReceipt(
            tx_id=tx.tx_id,
            status=TxStatus.COMMITTED,
            result=result,
            block_height=block_height,
            shard_id=shard_id,
            committed_at=now,
        )

    def execute_block(self, block: Block, now: Optional[float] = None) -> List[TransactionReceipt]:
        """Execute every transaction of ``block`` sequentially."""
        receipts = []
        for tx in block.transactions:
            receipts.append(
                self.execute_transaction(
                    tx,
                    block_height=block.height,
                    shard_id=block.header.shard_id,
                    now=now,
                )
            )
        return receipts

    def execute_sequence(self, transactions: Sequence[Transaction]) -> List[TransactionReceipt]:
        """Execute a plain list of transactions (used by tests and baselines)."""
        return [self.execute_transaction(tx) for tx in transactions]
