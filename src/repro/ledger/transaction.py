"""Transactions and receipts."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional, Tuple

from repro.crypto.hashing import digest_of

_TX_COUNTER = itertools.count()


def rebase_tx_counter(start: int = 0) -> None:
    """Rebase the process-global transaction-id counter (harness use only).

    Transaction ids embed the counter, and the id's *length* can leak into
    modelled quantities (a 2PL lock entry stores the holder's tx id in shard
    state, so ``StateStore.size_bytes`` — and any state-transfer delay
    derived from it — varies with the digit count).  Benchmarks that compare
    runs executed at different points of one process pin the counter before
    each run so "same seed" means "same run" exactly.
    """
    global _TX_COUNTER
    _TX_COUNTER = itertools.count(start)


def swap_tx_counter(counter: "itertools.count") -> "itertools.count":
    """Swap the process-global id counter for ``counter``; returns the old one.

    The scale-out engine gives every partition its own disjoint id stream
    (see ``repro.core.homecoord.partition_tx_counter``): the partition swaps
    its counter in around each barrier window so transactions it creates —
    driver arrivals, splitter prepares/decisions, reference-committee votes —
    get ids that depend only on the partition's own history, never on how
    partitions were grouped onto worker processes.  The previous counter is
    restored (by swapping back) when the window ends.
    """
    global _TX_COUNTER
    previous = _TX_COUNTER
    _TX_COUNTER = counter
    return previous


class TxStatus(str, Enum):
    """Lifecycle status of a transaction."""

    PENDING = "pending"
    COMMITTED = "committed"
    ABORTED = "aborted"
    FAILED = "failed"


@dataclass(frozen=True)
class Transaction:
    """A chaincode invocation.

    Attributes
    ----------
    tx_id:
        Unique identifier (assigned by :func:`Transaction.create`).
    chaincode / function / args:
        The chaincode name, function name and argument mapping.
    client_id:
        Identifier of the submitting client.
    keys:
        State keys the transaction touches; used for shard routing, lock
        acquisition and the cross-shard probability analysis.
    """

    tx_id: str
    chaincode: str
    function: str
    args: Dict[str, Any] = field(default_factory=dict)
    client_id: str = "client"
    keys: Tuple[str, ...] = ()
    submitted_at: float = 0.0

    @staticmethod
    def create(chaincode: str, function: str, args: Optional[Dict[str, Any]] = None,
               client_id: str = "client", keys: Tuple[str, ...] = (),
               submitted_at: float = 0.0) -> "Transaction":
        """Create a transaction with a fresh unique identifier."""
        args = args or {}
        seq = next(_TX_COUNTER)
        tx_id = f"tx-{seq}-{digest_of((chaincode, function, args, client_id, seq))[:8]}"
        return Transaction(
            tx_id=tx_id,
            chaincode=chaincode,
            function=function,
            args=dict(args),
            client_id=client_id,
            keys=tuple(keys),
            submitted_at=submitted_at,
        )

    @property
    def digest(self) -> str:
        """Content digest of the transaction (computed once, then cached).

        Every replica recomputes the Merkle root over the block's transaction
        digests, so the digest is memoized on the instance; writing straight
        to ``__dict__`` sidesteps the frozen-dataclass ``__setattr__`` guard
        without weakening it for the declared fields.
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = digest_of({
                "tx_id": self.tx_id,
                "chaincode": self.chaincode,
                "function": self.function,
                "args": self.args,
            })
            self.__dict__["_digest"] = cached
        return cached

    def num_arguments(self) -> int:
        """Number of distinct state keys touched (``d`` in Appendix B)."""
        return len(set(self.keys))


@dataclass
class TransactionReceipt:
    """The result of executing a transaction."""

    tx_id: str
    status: TxStatus
    result: Any = None
    error: Optional[str] = None
    block_height: Optional[int] = None
    shard_id: Optional[int] = None
    committed_at: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.status is TxStatus.COMMITTED
