"""The ledger analytics & audit index: O(delta) incremental materializations.

At millions of blocks, every audit invariant and historical query that walks
a full chain (or rescans a full state store) is the dominant cost of a run —
and a *periodic* auditor doing it is quadratic.  This module is the fix: a
columnar index maintained **incrementally at commit time** from the existing
commit observers, so every consumer reads a running materialization instead
of recomputing over history.  The design follows the modular-materialisation
idea: each invariant/query is one "rule" kept up to date delta-at-a-time,
with a one-shot full rebuild retained as the differential oracle
(:func:`rebuild_index` — re-ingesting the chains from scratch must reproduce
the incremental index bit-for-bit).

Materializations maintained per committed block (each O(block) to update):

* **block rows** — per shard, columnar arrays of block hash, transaction
  count, cross-shard flag, commit/abort decision counts, epoch and
  timestamp, appended in height order along one hash-linked chain
  (duplicate commit reports from the committee fan-out are dropped; a
  competing branch that outgrows the followed chain triggers a bounded
  reorg, mirroring the replicas' longest-chain rule).
* **prefix sums** — cumulative transaction / cross-shard / decision columns,
  so any windowed query (throughput, cross-shard rate, abort rate over a
  height range) is O(1) per window — the SQL window-function accelerator
  idiom, materialized as running sums.
* **balance deltas** — for Smallbank, the exact per-account deltas each
  committed execution applied (derived from the receipts via
  :func:`repro.workloads.smallbank.receipt_deltas`), as running per-shard
  and global sums plus optional per-account history.  Money conservation
  becomes "the global running delta is zero" — O(1) to read.
* **per-epoch aggregates** — blocks/transactions per epoch, and the
  epoch-transition quorum margins fed in by the system.
* **attested slots** — the (enclave, log, position) -> digest binding map the
  rollback audit checks, with first-binding semantics.

The index is a pure observer: it never schedules events or mutates the
system, so an indexed run commits exactly the same blocks as a bare one.
"""

from __future__ import annotations

from array import array
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.ledger.block import Block
from repro.ledger.state import StateStore

#: Chaincode functions that execute a cross-shard 2PC phase on a shard.
#: These are the canonical definitions — the auditor's atomicity check and
#: the index's cross-shard/decision columns must agree on them.
PREPARE_FUNCTIONS = ("preparePayment", "prepare_multi_put")
COMMIT_FUNCTIONS = ("commitPayment", "commit_multi_put")
ABORT_FUNCTIONS = ("abortPayment", "abort_multi_put")
CROSS_SHARD_FUNCTIONS = frozenset(PREPARE_FUNCTIONS + COMMIT_FUNCTIONS + ABORT_FUNCTIONS)

#: How many applied block payloads each shard retains for branch switches.
#: A committed fork (or a committee handover onto a restarted chain) deeper
#: than this cannot be reorged onto incrementally; the index then stays on
#: its branch and the auditor's sync checks surface the divergence.
REORG_WINDOW = 512


@dataclass(frozen=True)
class RangeStats:
    """Aggregates over a half-open height range ``[start, end)`` of one shard."""

    shard_id: int
    start_height: int
    end_height: int
    blocks: int
    transactions: int
    cross_shard_blocks: int
    commit_decisions: int
    abort_decisions: int

    @property
    def cross_shard_rate(self) -> float:
        return self.cross_shard_blocks / self.blocks if self.blocks else 0.0

    @property
    def abort_rate(self) -> float:
        """Aborted cross-shard decisions over all decisions executed in the range."""
        decisions = self.commit_decisions + self.abort_decisions
        return self.abort_decisions / decisions if decisions else 0.0


class _ShardColumns:
    """Columnar per-shard block table with prefix sums.

    Rows are appended strictly in height order starting at ``origin + 1``
    (``origin`` is the chain height at registration time — 0 when the index
    attaches before the run).  Gap handling and deduplication live in
    :class:`LedgerIndex`, which only calls :meth:`append_row` contiguously.
    """

    __slots__ = ("shard_id", "origin", "origin_hash", "tip_height", "tip_hash",
                 "block_hash", "tx_count", "cum_tx", "cross", "cum_cross",
                 "commits", "cum_commits", "aborts", "cum_aborts",
                 "epoch", "timestamp")

    def __init__(self, shard_id: int, origin: int = 0,
                 tip_hash: Optional[str] = None) -> None:
        self.shard_id = shard_id
        self.origin = origin
        self.origin_hash = tip_hash
        self.tip_height = origin
        self.tip_hash = tip_hash
        #: Per-row block hashes (references to the blocks' own strings, so
        #: this column costs one pointer per row).  Lets the index tell a
        #: duplicate commit report (same hash) from a fork sibling
        #: (different block at an indexed height), and rewind its tip.
        self.block_hash: List[str] = []
        self.tx_count = array("q")
        self.cum_tx = array("q")
        self.cross = array("b")
        self.cum_cross = array("q")
        self.commits = array("q")
        self.cum_commits = array("q")
        self.aborts = array("q")
        self.cum_aborts = array("q")
        self.epoch = array("q")
        self.timestamp = array("d")

    def rows(self) -> int:
        return len(self.tx_count)

    def hash_at(self, height: int) -> Optional[str]:
        """The indexed block hash at ``height`` (origin hash at the origin)."""
        if height == self.origin:
            return self.origin_hash
        position = height - self.origin - 1
        if 0 <= position < len(self.block_hash):
            return self.block_hash[position]
        return None

    def append_row(self, height: int, row: Tuple) -> None:
        txs, cross, commits, aborts, epoch, timestamp, block_hash = row
        last = self.rows() - 1
        self.block_hash.append(block_hash)
        self.tx_count.append(txs)
        self.cum_tx.append(txs + (self.cum_tx[last] if last >= 0 else 0))
        self.cross.append(cross)
        self.cum_cross.append(cross + (self.cum_cross[last] if last >= 0 else 0))
        self.commits.append(commits)
        self.cum_commits.append(commits + (self.cum_commits[last] if last >= 0 else 0))
        self.aborts.append(aborts)
        self.cum_aborts.append(aborts + (self.cum_aborts[last] if last >= 0 else 0))
        self.epoch.append(epoch)
        self.timestamp.append(timestamp)
        self.tip_height = height
        self.tip_hash = block_hash

    def pop_row(self) -> None:
        """Rewind the tip by one row (branch-switch support)."""
        for column in (self.block_hash, self.tx_count, self.cum_tx, self.cross,
                       self.cum_cross, self.commits, self.cum_commits,
                       self.aborts, self.cum_aborts, self.epoch, self.timestamp):
            column.pop()
        self.tip_height -= 1
        self.tip_hash = self.block_hash[-1] if self.block_hash else self.origin_hash

    def range_stats(self, start_height: int, end_height: int) -> RangeStats:
        """O(1) aggregates over ``[start_height, end_height)`` via the prefix sums."""
        start = max(start_height, self.origin + 1)
        end = min(end_height, self.tip_height + 1)
        lo = start - self.origin - 1          # first row index in range
        hi = end - self.origin - 1            # one past the last row index

        def span(cum: array) -> int:
            if hi <= 0 or lo >= hi:
                return 0
            return cum[hi - 1] - (cum[lo - 1] if lo > 0 else 0)

        blocks = max(hi, 0) - max(lo, 0) if hi > lo else 0
        return RangeStats(
            shard_id=self.shard_id, start_height=start_height,
            end_height=end_height, blocks=max(blocks, 0),
            transactions=span(self.cum_tx),
            cross_shard_blocks=span(self.cum_cross),
            commit_decisions=span(self.cum_commits),
            abort_decisions=span(self.cum_aborts),
        )

    def snapshot(self) -> Dict[str, Any]:
        return {
            "origin": self.origin,
            "tip_height": self.tip_height,
            "tip_hash": self.tip_hash,
            "block_hash": list(self.block_hash),
            "tx_count": list(self.tx_count),
            "cross": list(self.cross),
            "commits": list(self.commits),
            "aborts": list(self.aborts),
            "epoch": list(self.epoch),
            "timestamp": list(self.timestamp),
        }


class LedgerIndex:
    """Columnar index over committed blocks, maintained at commit time.

    Feed it with :meth:`ingest_block` (idempotent per (shard, height)); read
    the materializations through the query methods.  ``account_history=False``
    drops the per-account delta log (running balances are always kept) for
    long bounded-memory runs.
    """

    def __init__(self, account_history: bool = True) -> None:
        self.history_enabled = account_history
        self._shards: Dict[int, _ShardColumns] = {}
        #: account key -> running sum of applied deltas.
        self._account_delta: Dict[str, int] = {}
        #: account key -> [(height, shard, delta)] in ingestion order.
        self._history: Dict[str, List[Tuple[int, int, int]]] = {}
        self._net_delta = 0
        self._minted = 0
        self._shard_net_delta: Dict[int, int] = {}
        #: epoch -> [blocks, transactions, cross-shard blocks].
        self._epoch_totals: Dict[int, List[int]] = {}
        #: epoch -> {shard -> min active-minus-quorum margin} (+ strategy).
        self._epoch_margins: Dict[int, Dict[int, int]] = {}
        self._epoch_strategy: Dict[int, str] = {}
        #: (enclave id, log name, position) -> first digest bound there.
        self._attested: Dict[Tuple[str, str, int], str] = {}
        #: shard -> {height -> [candidate payloads]}: blocks that cannot land
        #: on the followed chain yet — reports above a gap, and fork siblings
        #: of already-indexed heights.  A candidate lands only when it
        #: hash-links contiguously; a parked *branch* that strictly outgrows
        #: the followed chain triggers a reorg (see :meth:`_maybe_reorg`).
        self._parked: Dict[int, Dict[int, List[Tuple]]] = {}
        #: shard -> recent applied (height, payload) ring, so a branch switch
        #: can unapply the abandoned suffix (bounded by ``REORG_WINDOW``).
        self._recent: Dict[int, Deque[Tuple[int, Tuple]]] = {}
        #: account -> number of applied deltas currently materialized, so an
        #: unapply can tell "delta sums back to zero" from "never touched".
        self._account_touches: Dict[str, int] = {}
        self.blocks_indexed = 0
        self.duplicates_dropped = 0
        self.reorgs = 0
        self.reorged_out = 0

    # -------------------------------------------------------------- ingestion
    def register_shard(self, shard_id: int, origin_height: int = 0,
                       origin_hash: Optional[str] = None) -> None:
        """Declare a shard whose blocks will be ingested from ``origin_height``.

        ``origin_height > 0`` marks a mid-run attach: rows below the origin
        were never seen, so balance materializations are exact only relative
        to the state at the origin (see :meth:`balances_exact`).
        """
        if shard_id in self._shards:
            return
        self._shards[shard_id] = _ShardColumns(shard_id, origin=origin_height,
                                               tip_hash=origin_hash)
        self._shard_net_delta.setdefault(shard_id, 0)

    def ingest_block(self, shard_id: int, block: Block,
                     receipts: Sequence[Any] = (), epoch: int = 0) -> bool:
        """Index one committed block; returns True if it was newly accepted.

        Ingestion is idempotent and **hash-linked**: duplicate reports of an
        already-indexed block (same height, same hash) are dropped, and a row
        only lands contiguously if its ``prev_hash`` matches the index's tip
        hash — the committee commit fan-out re-reports blocks from *every*
        member after membership changes, and a joiner's local chain restarts
        its height numbering, so height alone cannot distinguish the
        canonical stream from a restarted one.  Anything that cannot land on
        the followed chain (a report above a gap, a fork sibling of an
        indexed height, a non-linking tip extension) is *parked*; when the
        parked candidates form a branch that hash-links off the followed
        chain and is **strictly longer** than it, the index switches to that
        branch (longest-wins, the same rule the replicas' chains follow),
        unapplying the abandoned suffix so every materialization counts one
        coherent chain's effects exactly once.
        """
        columns = self._shards.get(shard_id)
        if columns is None:
            self.register_shard(shard_id)
            columns = self._shards[shard_id]
        height = block.height
        parked = self._parked.setdefault(shard_id, {})
        if height <= columns.tip_height and (
                height <= columns.origin
                or columns.hash_at(height) == block.block_hash):
            self.duplicates_dropped += 1
            return False
        from repro.workloads.smallbank import receipt_deltas, receipt_minted

        receipts_by_id = {receipt.tx_id: receipt for receipt in receipts}
        txs = len(block.transactions)
        cross = 0
        commit_decisions = 0
        abort_decisions = 0
        minted = 0
        deltas: List[Tuple[str, int]] = []
        for tx in block.transactions:
            if tx.function in CROSS_SHARD_FUNCTIONS:
                cross = 1
            receipt = receipts_by_id.get(tx.tx_id)
            ok = receipt is not None and receipt.ok
            if ok:
                if tx.function in COMMIT_FUNCTIONS:
                    commit_decisions += 1
                elif tx.function in ABORT_FUNCTIONS:
                    abort_decisions += 1
            if ok and tx.chaincode == "smallbank":
                deltas.extend(receipt_deltas(tx, receipt))
                minted += receipt_minted(tx, receipt)
        row = (txs, cross, commit_decisions, abort_decisions, epoch,
               block.header.timestamp, block.block_hash)
        payload = (row, deltas, minted, block.prev_hash)
        if (height == columns.tip_height + 1
                and (columns.tip_hash is None
                     or block.prev_hash == columns.tip_hash)):
            self._apply(shard_id, columns, height, payload)
            self._flush_parked(shard_id, columns, parked)
            return True
        # Cannot land on the followed chain: a report above a gap, a fork
        # sibling of an indexed height, or a tip extension that links a
        # different chain.  Park the whole payload — it lands later if the
        # gap fills and it hash-links, or as part of a branch switch if its
        # branch outgrows the followed one.
        candidates = parked.setdefault(height, [])
        if any(existing[0][-1] == block.block_hash for existing in candidates):
            self.duplicates_dropped += 1
            return False
        candidates.append(payload)
        self._maybe_reorg(shard_id, columns, parked)
        return True

    def _flush_parked(self, shard_id: int, columns: _ShardColumns,
                      parked: Dict[int, List[Tuple]]) -> None:
        """Land parked rows that now hash-link contiguously onto the tip."""
        while True:
            next_height = columns.tip_height + 1
            candidates = parked.get(next_height)
            if not candidates:
                return
            linked = next((payload for payload in candidates
                           if columns.tip_hash is None
                           or payload[3] == columns.tip_hash), None)
            if linked is None:
                return  # all candidates extend some other chain; keep waiting
            candidates.remove(linked)
            if not candidates:
                del parked[next_height]
            self._apply(shard_id, columns, next_height, linked)

    def _maybe_reorg(self, shard_id: int, columns: _ShardColumns,
                     parked: Dict[int, List[Tuple]]) -> None:
        """Switch to a parked branch that strictly outgrew the followed chain.

        A branch is a hash-linked run of parked candidates whose first block
        links to an indexed block (or the origin).  The longest such branch
        wins only if it is strictly taller than the current tip — mirroring
        the replicas' own longest-chain rule, so e.g. a full-committee
        handover onto a restarted, re-batched chain is followed as soon as
        that chain overtakes the abandoned one.  The unapplied suffix is
        parked again, so a switch is lossless and reversible; a branch point
        deeper than the ``REORG_WINDOW`` of retained payloads cannot be
        switched to (the auditor's sync checks surface that).
        """
        if not parked:
            return
        tip = columns.tip_height
        best: Optional[Tuple[int, List[Tuple[int, Tuple]]]] = None
        for start in sorted(h for h in parked if columns.origin < h <= tip + 1):
            parent = columns.hash_at(start - 1)
            for candidate in parked[start]:
                if parent is not None and candidate[3] != parent:
                    continue
                branch = [(start, candidate)]
                branch_hash = candidate[0][-1]
                next_height = start + 1
                while True:
                    extension = next((p for p in parked.get(next_height, ())
                                      if p[3] == branch_hash), None)
                    if extension is None:
                        break
                    branch.append((next_height, extension))
                    branch_hash = extension[0][-1]
                    next_height += 1
                if branch[-1][0] > tip and (best is None
                                            or branch[-1][0] > best[0]):
                    best = (branch[-1][0], branch)
        if best is None:
            return
        branch = best[1]
        depth = tip - (branch[0][0] - 1)
        recent = self._recent.get(shard_id)
        if depth > 0 and (recent is None or len(recent) < depth):
            return  # branch point fell out of the reorg window
        for _ in range(depth):
            old_height, old_payload = recent.pop()
            self._unapply(shard_id, columns, old_height, old_payload)
            parked.setdefault(old_height, []).append(old_payload)
            self.reorged_out += 1
        for height, payload in branch:
            candidates = parked[height]
            candidates.remove(payload)
            if not candidates:
                del parked[height]
            self._apply(shard_id, columns, height, payload)
        self.reorgs += 1
        self._flush_parked(shard_id, columns, parked)

    def _apply(self, shard_id: int, columns: _ShardColumns, height: int,
               payload: Tuple) -> None:
        """Land one block's row and fold its effects into the running sums."""
        row, deltas, minted = payload[0], payload[1], payload[2]
        columns.append_row(height, row)
        txs, cross, _, _, epoch, _, _ = row
        self.blocks_indexed += 1
        self._minted += minted
        for account, delta in deltas:
            self._account_delta[account] = self._account_delta.get(account, 0) + delta
            self._account_touches[account] = self._account_touches.get(account, 0) + 1
            if self.history_enabled:
                self._history.setdefault(account, []).append((height, shard_id, delta))
            self._net_delta += delta
            self._shard_net_delta[shard_id] = (
                self._shard_net_delta.get(shard_id, 0) + delta)
        totals = self._epoch_totals.setdefault(epoch, [0, 0, 0])
        totals[0] += 1
        totals[1] += txs
        totals[2] += cross
        self._recent.setdefault(shard_id, deque(maxlen=REORG_WINDOW)).append(
            (height, payload))

    def _unapply(self, shard_id: int, columns: _ShardColumns, height: int,
                 payload: Tuple) -> None:
        """Reverse :meth:`_apply` for the current tip row (reorg rewind).

        Must be called top-down from the tip, so an account's most recent
        history entries are exactly this payload's.
        """
        row, deltas, minted = payload[0], payload[1], payload[2]
        columns.pop_row()
        txs, cross, _, _, epoch, _, _ = row
        self.blocks_indexed -= 1
        self._minted -= minted
        for account, delta in reversed(deltas):
            self._account_delta[account] -= delta
            self._account_touches[account] -= 1
            if self.history_enabled:
                self._history[account].pop()
            if self._account_touches[account] == 0:
                del self._account_touches[account]
                del self._account_delta[account]
                if self.history_enabled:
                    del self._history[account]
            self._net_delta -= delta
            self._shard_net_delta[shard_id] -= delta
        totals = self._epoch_totals[epoch]
        totals[0] -= 1
        totals[1] -= txs
        totals[2] -= cross
        if totals[0] == 0:
            del self._epoch_totals[epoch]

    def record_epoch_transition(self, epoch: int, strategy: str,
                                min_active_margin: Dict[int, int]) -> None:
        """Materialize one executed epoch transition's per-shard quorum margins."""
        margins = self._epoch_margins.setdefault(epoch, {})
        for shard_id, margin in min_active_margin.items():
            previous = margins.get(shard_id)
            if previous is None or margin < previous:
                margins[shard_id] = margin
        self._epoch_strategy[epoch] = strategy

    def record_attestation(self, enclave_id: str, log_name: str, position: int,
                           digest: str) -> Optional[str]:
        """Record one attested append; returns the previously bound digest, if any.

        First-binding semantics: a slot binds to the digest first seen there;
        a later conflicting digest is returned to the caller (the auditor
        turns it into a rollback violation) and does not overwrite.
        """
        key = (enclave_id, log_name, position)
        bound = self._attested.get(key)
        if bound is None:
            self._attested[key] = digest
            return None
        return bound

    # ---------------------------------------------------------------- queries
    @property
    def shard_ids(self) -> List[int]:
        return sorted(self._shards)

    def tip_height(self, shard_id: int) -> int:
        columns = self._shards.get(shard_id)
        return columns.tip_height if columns is not None else 0

    def tip_hash(self, shard_id: int) -> Optional[str]:
        columns = self._shards.get(shard_id)
        return columns.tip_hash if columns is not None else None

    def block_count(self, shard_id: Optional[int] = None) -> int:
        if shard_id is not None:
            columns = self._shards.get(shard_id)
            return columns.rows() if columns is not None else 0
        return sum(columns.rows() for columns in self._shards.values())

    def tx_count(self, shard_id: Optional[int] = None) -> int:
        if shard_id is not None:
            columns = self._shards.get(shard_id)
            return columns.cum_tx[-1] if columns is not None and columns.rows() else 0
        return sum(columns.cum_tx[-1]
                   for columns in self._shards.values() if columns.rows())

    def balances_exact(self) -> bool:
        """Whether the balance materializations saw every block of the
        chains being followed.

        False when a shard was registered mid-run (``origin > 0``) or has
        rows parked *above* its tip (a gap in, or a branch racing ahead of,
        the followed chain) — callers should fall back to a full state scan
        then.  Fork siblings parked at or below the tip (abandoned branches)
        do not affect exactness: the followed chain itself is complete.
        """
        for shard_id, columns in self._shards.items():
            if columns.origin != 0:
                return False
            if any(height > columns.tip_height
                   for height in self._parked.get(shard_id, ())):
                return False
        return True

    def parked_heights(self, shard_id: int) -> List[int]:
        """All parked heights: gaps above the tip plus abandoned-branch
        siblings at or below it (see :meth:`pending_heights`)."""
        return sorted(self._parked.get(shard_id, ()))

    def pending_heights(self, shard_id: int) -> List[int]:
        """Parked heights above the tip — rows the followed chain is missing."""
        tip = self.tip_height(shard_id)
        return sorted(height for height in self._parked.get(shard_id, ())
                      if height > tip)

    def net_balance_delta(self, shard_id: Optional[int] = None) -> int:
        """Running sum of every applied balance delta."""
        if shard_id is not None:
            return self._shard_net_delta.get(shard_id, 0)
        return self._net_delta

    def minted(self) -> int:
        """Running sum of legitimately created money (deposits, createAccount)."""
        return self._minted

    def balance_drift(self) -> int:
        """Applied deltas minus legitimate mints — 0 iff money was conserved.

        This is the O(1) money-conservation invariant: every transfer nets
        to zero, so any non-zero drift means a delta was lost, duplicated or
        forged somewhere in the committed history.
        """
        return self._net_delta - self._minted

    def account_balance(self, account: str, initial: int = 0) -> int:
        """Initial balance plus every delta applied to ``account`` (O(1))."""
        return initial + self._account_delta.get(account, 0)

    def account_delta(self, account: str) -> int:
        return self._account_delta.get(account, 0)

    def account_history(self, account: str) -> List[Tuple[int, int, int]]:
        """The (height, shard, delta) log of one account, ingestion order."""
        if not self.history_enabled:
            raise ConfigurationError("account history disabled for this index")
        return list(self._history.get(account, ()))

    def range_stats(self, shard_id: int, start_height: int,
                    end_height: int) -> RangeStats:
        """O(1) aggregates over ``[start_height, end_height)`` of one shard."""
        columns = self._shards.get(shard_id)
        if columns is None:
            return RangeStats(shard_id, start_height, end_height, 0, 0, 0, 0, 0)
        return columns.range_stats(start_height, end_height)

    def window_rates(self, shard_id: int, window_blocks: int) -> List[RangeStats]:
        """The shard's history cut into fixed-size height windows (each O(1))."""
        if window_blocks < 1:
            raise ConfigurationError("window_blocks must be at least 1")
        columns = self._shards.get(shard_id)
        if columns is None:
            return []
        windows = []
        start = columns.origin + 1
        while start <= columns.tip_height:
            end = min(start + window_blocks, columns.tip_height + 1)
            windows.append(columns.range_stats(start, end))
            start = end
        return windows

    def epoch_summary(self) -> Dict[int, Dict[str, int]]:
        """Per-epoch block/transaction/cross-shard totals (running aggregates)."""
        return {epoch: {"blocks": totals[0], "transactions": totals[1],
                        "cross_shard_blocks": totals[2]}
                for epoch, totals in sorted(self._epoch_totals.items())}

    def epoch_quorum_margins(self) -> Dict[int, Dict[int, int]]:
        """Per-epoch minimum active-minus-quorum margins, as fed by the system."""
        return {epoch: dict(margins)
                for epoch, margins in sorted(self._epoch_margins.items())}

    def epoch_strategy(self, epoch: int) -> Optional[str]:
        return self._epoch_strategy.get(epoch)

    @property
    def attestations_recorded(self) -> int:
        return len(self._attested)

    # ------------------------------------------------------------- comparison
    def snapshot(self) -> Dict[str, Any]:
        """The complete chain-derived materialization, for differential compares.

        Covers everything :func:`rebuild_index` can recompute from the chains
        alone; control-plane records (attested slots, epoch margins) are
        exposed through their own accessors instead.
        """
        return {
            "shards": {shard_id: columns.snapshot()
                       for shard_id, columns in sorted(self._shards.items())},
            "account_delta": dict(sorted(self._account_delta.items())),
            "history": ({account: list(entries)
                         for account, entries in sorted(self._history.items())}
                        if self.history_enabled else None),
            "net_delta": self._net_delta,
            "minted": self._minted,
            "shard_net_delta": dict(sorted(self._shard_net_delta.items())),
            "epoch_totals": {epoch: list(totals)
                             for epoch, totals in sorted(self._epoch_totals.items())},
        }


def rebuild_index(
    chains: Dict[int, Any],
    registry_factory: Callable[[int], Any],
    populate: Optional[Callable[[int, StateStore], None]] = None,
    epoch_of: Optional[Callable[[float], int]] = None,
    account_history: bool = True,
) -> LedgerIndex:
    """The one-shot full-rebuild path: re-derive the index from the chains.

    Replays every retained block body of every chain through a fresh
    execution engine (built from ``registry_factory(shard_id)`` — per shard,
    because e.g. the reference committee runs a different chaincode than the
    benchmark shards — and seeded by ``populate`` with the same initial
    state the shards were loaded with) and ingests the resulting receipts
    into a fresh :class:`LedgerIndex`.  This is the differential oracle for the
    incremental maintenance: for a full-retention run,
    ``rebuild_index(...).snapshot() == live_index.snapshot()`` must hold
    bit-for-bit.  O(chain) by construction — which is exactly why the live
    path never calls it.

    ``epoch_of`` maps a block header timestamp to its epoch (default: all
    epoch 0); pass :meth:`repro.sharding.epochs.EpochSchedule.epoch_of` to
    reproduce the live epoch column.

    Raises :class:`ConfigurationError` if any chain pruned bodies (header
    retention): receipts cannot be re-derived for pruned blocks, so the
    oracle only applies to full-retention chains.
    """
    from repro.ledger.chaincode import ExecutionEngine

    index = LedgerIndex(account_history=account_history)
    for shard_id in sorted(chains):
        chain = chains[shard_id]
        if len(chain.blocks()) != len(chain.headers()):
            raise ConfigurationError(
                f"shard {shard_id} pruned block bodies (header retention): "
                "the rebuild oracle needs every body to replay receipts")
        state = StateStore()
        if populate is not None:
            populate(shard_id, state)
        engine = ExecutionEngine(registry_factory(shard_id), state)
        index.register_shard(shard_id, origin_height=0,
                             origin_hash=chain.header_at(0).block_hash)
        for block in chain.blocks():
            if block.height == 0:
                continue  # genesis commits nothing
            receipts = engine.execute_block(block, now=block.header.timestamp)
            epoch = epoch_of(block.header.timestamp) if epoch_of is not None else 0
            index.ingest_block(shard_id, block, receipts, epoch=epoch)
    return index


def snapshot_diff(a: Any, b: Any, path: str = "snapshot") -> Optional[str]:
    """First difference between two :meth:`LedgerIndex.snapshot` values.

    Returns a ``path: left != right`` description of the first divergence
    (deterministic order), or None if the snapshots are identical — the
    error message of the ``incremental == rebuild`` differential gate.
    """
    if type(a) is not type(b):
        return f"{path}: {type(a).__name__} != {type(b).__name__}"
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b), key=str):
            if key not in a:
                return f"{path}.{key}: only in the rebuilt index"
            if key not in b:
                return f"{path}.{key}: only in the incremental index"
            diff = snapshot_diff(a[key], b[key], f"{path}.{key}")
            if diff is not None:
                return diff
        return None
    if isinstance(a, (list, tuple)):
        if len(a) != len(b):
            return f"{path}: length {len(a)} != {len(b)}"
        for position, (left, right) in enumerate(zip(a, b)):
            diff = snapshot_diff(left, right, f"{path}[{position}]")
            if diff is not None:
                return diff
        return None
    if a != b:
        return f"{path}: {a!r} != {b!r}"
    return None
