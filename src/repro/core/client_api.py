"""Closed-loop client driver for the sharded system.

The paper modified the BLOCKBENCH driver to be closed-loop for multi-shard
experiments: a client waits until a cross-shard transaction finishes before
issuing a new one (Section 7).  :class:`ShardedClient` reproduces that
behaviour on top of :class:`~repro.core.system.ShardedBlockchain`, hiding the
coordination protocol behind a single ``submit``-style interface — the client
library extension discussed in Section 6.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.system import ShardedBlockchain
from repro.errors import ConfigurationError
from repro.sim.monitor import TimeSeries
from repro.txn.coordinator import DistributedTxOutcome, DistributedTxRecord
from repro.workloads.generator import WorkloadGenerator

#: Reservoir size for per-client latency samples.  A closed-loop client in a
#: long service run completes millions of transactions; keeping every latency
#: in a plain list grows without bound, so the stats hold a bounded
#: :class:`~repro.sim.monitor.TimeSeries` instead (exact count/mean, reservoir
#: percentiles).
CLIENT_LATENCY_SAMPLES = 1024


@dataclass
class ClientStats:
    """Per-client statistics (bounded memory regardless of run length)."""

    submitted: int = 0
    committed: int = 0
    aborted: int = 0
    latency: TimeSeries = field(default_factory=lambda: TimeSeries(
        "client_latency", max_samples=CLIENT_LATENCY_SAMPLES))

    @property
    def latencies(self) -> List[float]:
        """Retained latency samples (a bounded reservoir, not the full list)."""
        return self.latency.values()

    @property
    def abort_rate(self) -> float:
        decided = self.committed + self.aborted
        return self.aborted / decided if decided else 0.0


class ShardedClient:
    """A closed-loop client keeping ``outstanding`` transactions in flight."""

    def __init__(self, system: ShardedBlockchain, client_id: str,
                 workload: Optional[WorkloadGenerator] = None,
                 outstanding: int = 16, max_transactions: Optional[int] = None) -> None:
        if outstanding < 1:
            raise ConfigurationError("outstanding must be at least 1")
        self.system = system
        self.client_id = client_id
        self.outstanding = outstanding
        self.max_transactions = max_transactions
        # The seed must not depend on Python's per-process string hashing
        # (PYTHONHASHSEED), or identical runs in different processes would
        # draw different workloads; derive it from a stable digest instead.
        import hashlib
        stable = int.from_bytes(
            hashlib.sha256(client_id.encode("utf-8")).digest()[:4], "big")
        self.workload = workload or WorkloadGenerator(
            benchmark=system.config.benchmark,
            num_shards=system.config.num_shards,
            zipf_coefficient=system.config.zipf_coefficient,
            num_keys=system.config.num_keys,
            seed=stable % (2 ** 31),
        )
        self.stats = ClientStats()
        self._in_flight = 0

    def start(self) -> None:
        """Fill the window with the first ``outstanding`` transactions."""
        self.system.runtime.spawn(self._fill)

    def _fill(self) -> None:
        while self._in_flight < self.outstanding:
            if (self.max_transactions is not None
                    and self.stats.submitted >= self.max_transactions):
                return
            self._submit_one()

    def _submit_one(self) -> None:
        tx = self.workload.next_transaction(client_id=self.client_id, now=self.system.runtime.now)
        self.stats.submitted += 1
        self._in_flight += 1
        self.system.submit_transaction(tx, on_complete=self._on_complete)

    def _on_complete(self, record: DistributedTxRecord) -> None:
        self._in_flight -= 1
        if record.outcome is DistributedTxOutcome.COMMITTED:
            self.stats.committed += 1
        else:
            self.stats.aborted += 1
        if record.latency is not None:
            self.stats.latency.record(self.system.runtime.now, record.latency)
        self._fill()


def attach_clients(system: ShardedBlockchain, count: int, outstanding: int = 16,
                   benchmark: Optional[str] = None,
                   zipf_coefficient: Optional[float] = None) -> List[ShardedClient]:
    """Create and start ``count`` closed-loop clients against ``system``."""
    clients = []
    for index in range(count):
        workload = WorkloadGenerator(
            benchmark=benchmark or system.config.benchmark,
            num_shards=system.config.num_shards,
            zipf_coefficient=(zipf_coefficient if zipf_coefficient is not None
                              else system.config.zipf_coefficient),
            num_keys=system.config.num_keys,
            seed=system.config.seed * 1000 + index,
        )
        client = ShardedClient(system, client_id=f"client-{index}",
                               workload=workload, outstanding=outstanding)
        client.start()
        clients.append(client)
    return clients
