"""The sharded blockchain system (the paper's headline artifact).

:class:`~repro.core.system.ShardedBlockchain` composes the pieces built in
the other packages: it forms committees (Section 5), runs an AHL+ (or any
other) consensus cluster per shard (Section 4), deploys the benchmark
chaincodes, and executes cross-shard transactions through the
reference-committee 2PC/2PL protocol (Section 6) — all inside one
discrete-event simulation, so throughput, abort rates and reconfiguration
behaviour can be measured end to end.
"""

from repro.core.adversary import AdversaryConfig, AdversaryState
from repro.core.config import ShardedSystemConfig
from repro.core.system import EpochTransitionStats, ShardedBlockchain, ShardedRunResult
from repro.core.scaleout import ScaleOutShardedBlockchain, build_system
from repro.core.client_api import ShardedClient
from repro.core.driver import DriverStats, OpenLoopDriver, attach_open_loop_drivers
from repro.core.splitters import SmallbankSplitter, KVStoreSplitter, TransactionSplitter

__all__ = [
    "AdversaryConfig",
    "AdversaryState",
    "ShardedSystemConfig",
    "ShardedBlockchain",
    "ScaleOutShardedBlockchain",
    "build_system",
    "ShardedRunResult",
    "EpochTransitionStats",
    "ShardedClient",
    "OpenLoopDriver",
    "DriverStats",
    "attach_open_loop_drivers",
    "TransactionSplitter",
    "SmallbankSplitter",
    "KVStoreSplitter",
]
