"""Distributed 2PC coordination for the scale-out engine (home partitions).

PR 6's scale-out engine moved shard consensus into partitions but left the
whole coordination layer — the 2PC coordinator, the lock-admission mirror,
the reference committee and the open-loop drivers — on the parent process,
which serialized roughly a sixth of the total work.  This module distributes
all of it:

* Every transaction gets a deterministic **home partition**
  (:func:`home_shard` — its first participating shard) that runs the full
  coordinator state machine (:class:`HomeCoordinator`, a faithful port of
  the legacy ``ShardedBlockchain`` coordination methods) inside the
  partition's own sub-simulation.
* Lock admission becomes **participant-side**: each partition keeps a local
  :class:`~repro.txn.locks.LockManager` mirror of its own lock table and
  votes PrepareNotOK on deadlocks/timeouts itself.  Wounds travel to the
  victim's home as ordinary NotOK votes.  (Waits-for cycles that span
  shards are no longer visible to any single detector — they resolve
  through the wait timeout instead; per-shard cycles are still detected.)
* Workload generation moves **in-partition** (:class:`PartitionDriver`):
  each partition draws an independent stream seeded by a ``(seed,
  shard_id)`` split and keeps exactly the draws whose first key it owns
  (:meth:`~repro.workloads.generator.WorkloadGenerator.next_transaction_for_shard`),
  so the stream depends only on the partition's identity — never on worker
  grouping — and ``workers=1 == workers=N`` holds by construction.
* Votes, decisions, re-drives, receipts and client handoffs flow between
  partitions as ordinary barrier-window :class:`Command` records, batched
  into one :class:`WindowBlock`/:class:`WindowResult` pickle per worker per
  window.

Determinism rules
-----------------
Every cross-partition message pays ``config.relay_delay`` (the engine's
lookahead) before its destination acts — even a home messaging itself, so
latency is uniform and independent of placement.  Cross-partition commands
are *never* injected mid-window: both the parent and the worker groups hold
them until the next window starts and inject them sorted by ``(due, src,
seq)``, a total order that depends only on what each partition did.  Each
partition also owns a disjoint transaction-id stream
(:func:`partition_tx_counter`), swapped into the process-global counter
around every window, so ids never depend on which OS process drains which
partition.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.config import ShardedSystemConfig
from repro.core.driver import DriverStats, abort_bucket
from repro.core.splitters import splitter_for
from repro.core.system import REFERENCE_SHARD_ID
from repro.errors import SimulationError
from repro.ledger.state import StateStore
from repro.ledger.transaction import Transaction, TxStatus
from repro.txn.coordinator import (
    DistributedTxOutcome,
    DistributedTxPhase,
    DistributedTxRecord,
    TwoPhaseCommitCoordinator,
)
from repro.txn.locks import DeadlockDetected, LockManager
from repro.txn.reference_committee import CoordinatorState, ReferenceCommitteeChaincode
from repro.workloads.generator import WorkloadGenerator, shard_of_key

#: ``src``/``origin``/``dest`` value naming the parent barrier orchestrator.
PARENT = -1


def home_shard(shards) -> int:
    """Deterministic home partition of a transaction: its first participating shard.

    Pure function of the participating-shard set — independent of worker
    count, arrival order, epoch reconfigurations (committee membership
    changes never change *which* shards own a key) and simulation state, so
    every partition and the parent agree on it without coordination.
    """
    return min(shards)


def partition_tx_counter(shard_id: int) -> "itertools.count":
    """The disjoint transaction-id stream owned by partition ``shard_id``.

    Spaced 10^10 apart so no realistic run (the id streams also feed
    splitter prepares, decisions and reference-committee votes) can make two
    partitions' streams collide.  The parent keeps the process-default
    stream (ids below 10^10).
    """
    return itertools.count((shard_id + 1) * 10_000_000_000)


def partition_stream_seed(seed: int, shard_id: int) -> int:
    """Per-partition split of a driver workload seed (distinct per shard)."""
    return seed * 1_000_003 + 7_919 * shard_id + 17


# --------------------------------------------------------------------------
# Wire format.  Plain picklable dataclasses: process mode ships them over
# pipes (one WindowBlock/WindowResult per worker per window), inline mode
# passes the same objects in memory — same ordering rules, same outcomes.
# --------------------------------------------------------------------------

@dataclass
class Command:
    """One cross-partition message, due at an exact simulated time.

    ``src``/``seq`` are stamped by the emitting side (parent = ``PARENT``)
    and give same-``due`` commands a canonical total order.  Ops:

    * parent -> partition epoch/adversary control: ``remove``, ``admit``,
      ``margin``, ``prepare``, ``track``;
    * client handoff: ``client`` (owner/parent -> home),
      ``client_done`` (home -> owning partition's driver);
    * 2PC: ``prepare2pc`` (home -> participant), ``vote`` (participant ->
      home), ``decision`` (home -> participant), ``ack`` (participant ->
      home);
    * reference committee: ``ref_submit`` (home -> ``REFERENCE_SHARD_ID``),
      ``ref_receipt`` (reference -> home).
    """

    due: float
    dest: int
    op: str
    src: int = PARENT
    seq: int = -1
    txs: Tuple[Transaction, ...] = ()
    tx_id: str = ""
    #: prepare2pc/decision: the home partition votes/acks go back to.
    home: int = -1
    #: client/client_done/vote/ack: the partition (or PARENT) that sent it.
    origin: int = PARENT
    ok: bool = True
    reason: Optional[str] = None
    attempt: int = 0
    #: Wound-wait age priority ``(started_at, begin_seq, home_shard)`` — a
    #: total order across homes (begin_seq alone is only per-home unique).
    priority: Tuple = ()
    committed: bool = False
    latency: Optional[float] = None
    epoch: int = 0
    node_id: int = -1
    logical: int = -1
    transfer_override: Optional[float] = None
    marker: int = -1
    #: ref_submit: partition the eventual ref_receipt is addressed to.
    reply_to: int = PARENT
    #: ref_receipt: the reference committee's TransactionReceipt.
    receipt: Any = None

    def __reduce__(self):
        # Positional-tuple pickling: commands dominate the barrier RPC
        # payloads (each one crosses two pipes), and the default dict-based
        # dataclass reduction is ~2x slower to load and ~35% larger on the
        # wire.  Keep the tuple in field order — the framing unit test
        # checks it stays in sync with the dataclass fields.
        return (Command, (self.due, self.dest, self.op, self.src, self.seq,
                          self.txs, self.tx_id, self.home, self.origin,
                          self.ok, self.reason, self.attempt, self.priority,
                          self.committed, self.latency, self.epoch,
                          self.node_id, self.logical, self.transfer_override,
                          self.marker, self.reply_to, self.receipt))


@dataclass
class TxDone:
    """Partition -> parent completion report for a parent-submitted transaction."""

    time: float
    shard: int
    seq: int
    tx_id: str
    committed: bool
    abort_reason: Optional[str]
    started_at: float
    decided_at: Optional[float]
    completed_at: Optional[float]


@dataclass
class AdmitReport:
    """A destination partition executed an admit op: its transfer delay."""

    time: float
    shard: int
    seq: int
    marker: int
    node_id: int
    transfer: float


@dataclass
class MarginReport:
    """A partition sampled its committee's active-minus-quorum margin."""

    time: float
    shard: int
    seq: int
    marker: int
    margin: int


@dataclass
class WindowBlock:
    """One parent -> worker barrier message: run every owned partition to
    ``until`` with these inbound commands (already globally ordered)."""

    until: float
    epoch: int
    commands: Tuple[Command, ...] = ()


@dataclass
class WindowResult:
    """One worker -> parent barrier reply: parent-facing outputs plus the
    cross-partition commands that left this worker's partition group."""

    outputs: Tuple[Any, ...] = ()
    routed: Tuple[Command, ...] = ()


def inbound_sort_key(command: Command) -> Tuple[float, int, int]:
    """Canonical injection order for inbound commands at a window start.

    Depends only on what each partition (and the parent) emitted — never on
    how partitions are grouped onto worker processes — which is the heart of
    the workers=1 == workers=N guarantee.
    """
    return (command.due, command.src, command.seq)


def group_by_dest(commands) -> Dict[int, List[Command]]:
    """Split an ordered command sequence by destination, preserving order."""
    by_dest: Dict[int, List[Command]] = {}
    for command in commands:
        by_dest.setdefault(command.dest, []).append(command)
    return by_dest


# --------------------------------------------------------------------------
# Load-aware (but config-deterministic) partition -> worker assignment.
# --------------------------------------------------------------------------

def partition_weights(config: ShardedSystemConfig) -> Dict[int, float]:
    """Deterministic per-partition work weight, computed once from config.

    A shard partition's weight is its sampled share of the key space (its
    consensus work scales with the keys it owns) plus the probability that a
    uniform cross-shard pair homes there (``home = min`` skews coordination
    work toward low shard ids: ``P(home = p) = (2(S - p) - 1) / S^2``).  The
    reference-committee partition processes one BeginTx plus one vote per
    participant for *every* cross-shard transaction, so it is weighted like
    a busy shard of its own.  Nothing here reads runtime state — the same
    config always produces the same weights, hence the same assignment.
    """
    shards = config.num_shards
    counts = {shard: 0 for shard in range(shards)}
    stride = max(1, config.num_keys // 20_000)
    if config.benchmark == "smallbank":
        from repro.workloads.smallbank import account_key

        sampled = (account_key(str(index))
                   for index in range(0, config.num_keys, stride))
    else:
        from repro.workloads.kvstore import KVStoreWorkload

        workload = KVStoreWorkload(num_keys=config.num_keys)
        sampled = (workload.key_name(index)
                   for index in range(0, config.num_keys, stride))
    total = 0
    for key in sampled:
        counts[shard_of_key(key, shards)] += 1
        total += 1
    weights: Dict[int, float] = {}
    for shard, count in counts.items():
        share = count / total if total else 1.0 / shards
        home_probability = (2 * (shards - shard) - 1) / (shards * shards)
        weights[shard] = share + home_probability
    if config.use_reference_committee:
        weights[REFERENCE_SHARD_ID] = 2.0 / shards
    return weights


def assign_partitions(shard_ids: List[int], workers: int,
                      config: ShardedSystemConfig) -> List[List[int]]:
    """Group partitions onto ``workers`` processes (some groups may be empty).

    ``worker_assignment="modulo"`` keeps the legacy ``position % workers``
    rule; ``"load"`` (the default) runs longest-processing-time greedy over
    :func:`partition_weights`.  Both are pure functions of ``(shard_ids,
    workers, config)``; grouping only decides which OS process drains a
    partition, never the partition's event sequence, so both yield
    bit-identical outcomes.
    """
    workers = max(1, workers)
    groups: List[List[int]] = [[] for _ in range(workers)]
    if config.worker_assignment == "modulo":
        for position, shard_id in enumerate(shard_ids):
            groups[position % workers].append(shard_id)
        return groups
    weights = partition_weights(config)
    loads = [0.0] * workers
    for shard_id in sorted(shard_ids,
                           key=lambda sid: (-weights.get(sid, 1.0), sid)):
        index = min(range(workers), key=lambda i: (loads[i], i))
        loads[index] += weights.get(shard_id, 1.0)
        groups[index].append(shard_id)
    return [sorted(group) for group in groups]


# --------------------------------------------------------------------------
# In-partition open-loop driving.
# --------------------------------------------------------------------------

class PartitionDriver:
    """One open-loop driver's arrival process, as partition ``shard_id`` runs it.

    The parent-facing :class:`~repro.core.driver.OpenLoopDriver` splits into
    ``num_shards`` of these (one per partition, each with ``rate / S`` and a
    remainder-rule share of the caps).  Each draws from an independent
    per-partition stream and submits only the transactions whose first key
    the partition owns; transactions homed elsewhere are handed off with a
    ``client`` command and complete through ``client_done``.
    """

    def __init__(self, partition: Any, index: int, spec: Dict[str, Any]) -> None:
        self.partition = partition
        self.index = index
        shard_id = partition.shard_id
        shards = partition.config.num_shards
        total = spec.get("max_transactions")
        self.max_transactions = (
            None if total is None
            else total // shards + (1 if shard_id < total % shards else 0))
        self.rate_tps = spec["rate_tps"] / shards
        self.batch_size = spec.get("batch_size", 1)
        cap = spec.get("max_in_flight")
        self.max_in_flight = (
            None if cap is None
            else max(1, cap // shards + (1 if shard_id < cap % shards else 0)))
        self.client_id = f"{spec.get('client_id', 'open-loop')}@s{shard_id}"
        wspec = spec["workload"]
        self.workload = WorkloadGenerator(
            benchmark=wspec["benchmark"],
            num_shards=wspec["num_shards"],
            zipf_coefficient=wspec["zipf_coefficient"],
            num_keys=wspec["num_keys"],
            seed=partition_stream_seed(wspec["seed"], shard_id),
            vectorized=wspec.get("vectorized", False),
            vector_batch=wspec.get("vector_batch", 256),
        )
        self.stats = DriverStats()
        self._started = False

    def start(self) -> None:
        if not self._started:
            self._started = True
            self.partition.sim.schedule(0.0, self._tick)

    def _tick(self) -> None:
        stats = self.stats
        remaining = (None if self.max_transactions is None
                     else self.max_transactions - stats.submitted)
        if remaining is not None and remaining <= 0:
            return
        count = (self.batch_size if remaining is None
                 else min(self.batch_size, remaining))
        now = self.partition.sim.now
        for _ in range(count):
            if (self.max_in_flight is not None
                    and stats.in_flight >= self.max_in_flight):
                stats.dropped_arrivals += 1
                continue
            tx = self.workload.next_transaction_for_shard(
                self.partition.shard_id, client_id=self.client_id, now=now)
            stats.submitted += 1
            stats.in_flight += 1
            if stats.in_flight > stats.max_in_flight:
                stats.max_in_flight = stats.in_flight
            self.partition.submit_from_driver(tx, self)
        self.partition.sim.schedule(self.batch_size / self.rate_tps, self._tick)

    # ------------------------------------------------------------ completion
    def on_local_complete(self, record: DistributedTxRecord) -> None:
        """The transaction's home was this partition: completion is direct."""
        self._account(record.outcome is DistributedTxOutcome.COMMITTED,
                      record.abort_reason, record.latency,
                      self.partition.current_epoch)

    def on_remote_done(self, command: Command) -> None:
        """A ``client_done`` arrived from the remote home partition."""
        self._account(command.committed, command.reason, command.latency,
                      command.epoch)

    def _account(self, committed: bool, reason: Optional[str],
                 latency: Optional[float], epoch: int) -> None:
        stats = self.stats
        stats.in_flight -= 1
        if committed:
            stats.committed += 1
            stats.epoch_committed[epoch] = stats.epoch_committed.get(epoch, 0) + 1
        else:
            stats.aborted += 1
            stats.epoch_aborted[epoch] = stats.epoch_aborted.get(epoch, 0) + 1
            bucket = abort_bucket(reason)
            stats.abort_reasons[bucket] = stats.abort_reasons.get(bucket, 0) + 1
        if latency is not None:
            stats.latency_sum += latency
            stats.latency_count += 1


# --------------------------------------------------------------------------
# The distributed coordinator.
# --------------------------------------------------------------------------

@dataclass
class _Parked:
    """A PrepareTx parked in this partition's admission mirror, waiting."""

    tx_id: str
    prepare_tx: Transaction
    home: int
    attempt: int
    keys_outstanding: Set[str]


class HomeCoordinator:
    """Both coordination roles of one shard partition.

    **Home role** — the full 2PC coordinator state machine for every
    transaction homed here: a faithful port of the legacy
    ``ShardedBlockchain`` coordination methods with each parent<->shard
    relay replaced by a routed :class:`Command` (and the reference committee
    reached through ``ref_submit``/``ref_receipt`` instead of a same-
    simulation cluster).  Fault scenarios are per-home deep copies, so their
    counters depend only on this partition's own history.

    **Participant role** — this shard's half of other homes' transactions:
    local lock admission (the legacy ``_LockAdmission`` mirror, un-namespaced
    because it only ever sees this shard's keys), prepare execution and
    voting, decision execution and acking.

    The ``partition`` object supplies the runtime surface: ``sim``,
    ``config``, ``shard_id``, ``cluster``, ``adversary``, ``current_epoch``,
    ``route(command)``, ``watch(tx_id, callback)`` and
    ``emit_tx_done(record)``.
    """

    def __init__(self, partition: Any) -> None:
        self.partition = partition
        self.config: ShardedSystemConfig = partition.config
        self.sim = partition.sim
        self.shard_id: int = partition.shard_id
        self.coordinator = TwoPhaseCommitCoordinator(
            self.config.use_reference_committee,
            retain_records=self.config.retain_tx_records,
            prepare_timeout=self.config.prepare_timeout)
        self.splitter = splitter_for(self.config.benchmark)
        #: Per-home fault copy: hook counters (drop budgets, crash counts)
        #: advance with this partition's own transaction history only.
        self.fault = copy.deepcopy(self.config.fault_scenario)
        if self.fault is not None:
            self.fault.bind(partition)
        #: tx_id -> local completion callback, or the origin partition id
        #: (PARENT for parent-submitted transactions).
        self._completion: Dict[str, Any] = {}
        self._decisions_sent: Dict[str, Set[int]] = {}
        self._ref_watchers: Dict[str, Callable] = {}
        # Participant-side admission mirror (queueing policies only).
        self.manager: Optional[LockManager] = (
            LockManager(StateStore(), policy=self.config.conflict_policy,
                        on_grant=self._on_lock_grant,
                        detect_deadlocks=self.config.deadlock_detection)
            if self.config.conflict_policy != "abort" else None)
        self._tx_home: Dict[str, int] = {}
        self._tx_keys: Dict[str, Tuple[str, ...]] = {}
        self._parked: Dict[str, _Parked] = {}
        self.wounded_transactions = 0
        self.deadlocks_detected = 0
        self.wait_timeouts = 0

    # ----------------------------------------------------------------- routing
    def shard_of(self, key: str) -> int:
        return shard_of_key(key, self.config.num_shards)

    def shards_for_transaction(self, tx: Transaction) -> List[int]:
        try:
            return self.splitter.shards_touched(tx, self.shard_of)
        except Exception:
            shards = {self.shard_of(key) for key in tx.keys}
            return sorted(shards) if shards else [0]

    def _route(self, **kwargs: Any) -> None:
        self.partition.route(Command(**kwargs))

    def _submit_cluster_later(self, tx: Transaction, attempt: int = 0) -> None:
        """Submit to this partition's own cluster after the uniform relay delay.

        Even self-targeted hops pay ``relay_delay`` so message latency never
        depends on whether a participant happens to be its own home.
        """
        self.sim.schedule(self.config.relay_delay,
                          lambda: self.partition.cluster.submit([tx], attempt=attempt))

    # ------------------------------------------------------------ home: submit
    def submit_transaction(self, tx: Transaction,
                           on_complete: Optional[Callable[[DistributedTxRecord], None]] = None,
                           origin: Optional[int] = None) -> DistributedTxRecord:
        """Coordinate a benchmark transaction homed at this partition."""
        shards = self.shards_for_transaction(tx)
        if home_shard(shards) != self.shard_id:  # pragma: no cover - protocol bug guard
            raise SimulationError(
                f"transaction {tx.tx_id!r} homed at {home_shard(shards)} "
                f"submitted to partition {self.shard_id}")
        record = self.coordinator.begin(tx, shards, now=self.sim.now)
        if on_complete is not None:
            self._completion[tx.tx_id] = on_complete
        elif origin is not None:
            self._completion[tx.tx_id] = origin
        if not record.is_cross_shard:
            self._submit_single_shard(record)
            return record
        if (self.fault is not None and not self.coordinator.crashed
                and self.fault.crash_coordinator(record, "prepare")):
            self._crash_coordinator()
        if self.config.use_reference_committee:
            self._submit_begin_tx(record)
        else:
            self.coordinator.mark_begin_executed(tx.tx_id, now=self.sim.now)
            self._send_prepares(record)
        return record

    def handle_client(self, command: Command) -> None:
        """A transaction homed here arrived from its owner (or the parent)."""
        self.submit_transaction(command.txs[0], origin=command.origin)

    # ----------------------------------------------------- home: single shard
    def _submit_single_shard(self, record: DistributedTxRecord) -> None:
        tx = record.transaction
        self.coordinator.mark_begin_executed(tx.tx_id, now=self.sim.now)

        def on_receipt(receipt: Any) -> None:
            ok = receipt.status is TxStatus.COMMITTED
            self.coordinator.record_prepare_vote(tx.tx_id, self.shard_id, ok,
                                                 now=self.sim.now,
                                                 reason=receipt.error)
            self.coordinator.record_commit_ack(tx.tx_id, self.shard_id,
                                               now=self.sim.now)
            if record.phase is DistributedTxPhase.DONE:
                self._finish(record)

        self.partition.watch(tx.tx_id, on_receipt)
        self._submit_cluster_later(tx)
        if self.config.prepare_timeout is not None:
            self.sim.schedule(self.config.prepare_timeout,
                              self._check_single_shard_deadline, tx.tx_id)

    def _check_single_shard_deadline(self, tx_id: str) -> None:
        """Re-submit a single-shard transaction whose receipt never came."""
        record = self.coordinator.records.get(tx_id)
        if (record is None or record.outcome is not DistributedTxOutcome.PENDING
                or record.phase is DistributedTxPhase.DONE or record.prepare_votes):
            return
        if record.prepare_deadline is None or record.prepare_deadline > self.sim.now:
            delay = (record.prepare_deadline - self.sim.now
                     if record.prepare_deadline is not None
                     else self.config.prepare_timeout)
            self.sim.schedule(max(delay, 1e-9),
                              self._check_single_shard_deadline, tx_id)
            return
        self.coordinator.mark_redriven(record)
        record.prepare_deadline = self.sim.now + self.config.prepare_timeout
        self._submit_cluster_later(record.transaction, attempt=record.redrives)
        self.sim.schedule(self.config.prepare_timeout,
                          self._check_single_shard_deadline, tx_id)

    # ------------------------------------------------------ home: cross shard
    def _route_ref(self, ref_tx: Transaction, attempt: int) -> None:
        self._route(due=self.sim.now + self.config.relay_delay,
                    dest=REFERENCE_SHARD_ID, op="ref_submit", txs=(ref_tx,),
                    reply_to=self.shard_id, attempt=attempt)

    def handle_ref_receipt(self, command: Command) -> None:
        watcher = self._ref_watchers.pop(command.tx_id, None)
        if watcher is not None:
            watcher(command.receipt)

    def _submit_begin_tx(self, record: DistributedTxRecord) -> None:
        if self.coordinator.crashed:
            return  # recovery restarts records still in BEGINNING
        chaincode = ReferenceCommitteeChaincode()
        begin = chaincode.new_transaction(
            "beginTx", {"tx_id": record.tx_id, "num_committees": len(record.shards)},
            client_id=record.transaction.client_id,
        )

        def on_receipt(receipt: Any) -> None:
            self.coordinator.mark_begin_executed(record.tx_id, now=self.sim.now)
            self._send_prepares(record)

        self._ref_watchers[begin.tx_id] = on_receipt
        self._route_ref(begin, attempt=record.redrives)

    def _send_prepares(self, record: DistributedTxRecord,
                       only_shards: Optional[List[int]] = None) -> None:
        """Route the per-shard PrepareTx cohort (fault-aware; admission is
        participant-side, so prepares always leave the home immediately)."""
        if self.coordinator.crashed:
            return  # recovery re-drives undecided transactions
        prepares = self.splitter.prepare_transactions(record.transaction,
                                                      self.shard_of)
        if only_shards is not None:
            prepares = {shard: tx for shard, tx in prepares.items()
                        if shard in only_shards}
        for shard_id in sorted(prepares):
            extra_delay = 0.0
            if self.fault is not None:
                if self.fault.drop_prepare(record, shard_id):
                    continue  # the prepare-deadline re-drive recovers this
                extra_delay = self.fault.prepare_delay(record, shard_id)
            self._route(due=self.sim.now + self.config.relay_delay + extra_delay,
                        dest=shard_id, op="prepare2pc", txs=(prepares[shard_id],),
                        tx_id=record.tx_id, home=self.shard_id,
                        attempt=record.redrives,
                        priority=(record.started_at, record.begin_seq,
                                  self.shard_id))
        if self.config.prepare_timeout is not None:
            self.sim.schedule(self.config.prepare_timeout,
                              self._check_prepare_deadline, record.tx_id)

    # ------------------------------------------------------------- home: votes
    def handle_vote(self, command: Command) -> None:
        """A participant's prepare vote arrived (step 1b)."""
        tx_id, shard_id, ok = command.tx_id, command.origin, command.ok
        record = self.coordinator.records.get(tx_id)
        if record is None:
            # Pruned (stale vote) or unknown while crashed: bookkeeping only.
            # The fault hooks and the reference submission need a live record
            # — documented deviation from the legacy engine, which never saw
            # votes for pruned records because its watchers died with them.
            if not self.coordinator.retain_records or self.coordinator.crashed:
                self.coordinator.record_prepare_vote(tx_id, shard_id, ok,
                                                     now=self.sim.now,
                                                     reason=command.reason)
            return
        if self.fault is not None and self.fault.drop_vote(record, shard_id, ok):
            return  # vote lost; the prepare-deadline re-drive recovers
        self._handle_prepare_outcome(record, shard_id, ok, command.reason)

    def _handle_prepare_outcome(self, record: DistributedTxRecord, shard_id: int,
                                ok: bool, reason: Optional[str]) -> None:
        if self.config.use_reference_committee:
            self._submit_vote(record, shard_id, ok, reason)
        else:
            before = record.outcome
            self._record_vote(record, shard_id, ok, reason)
            if (record.outcome is not DistributedTxOutcome.PENDING
                    and before is DistributedTxOutcome.PENDING):
                self._send_decision(record)

    def _record_vote(self, record: DistributedTxRecord, shard_id: int, ok: bool,
                     reason: Optional[str]) -> None:
        self.coordinator.record_prepare_vote(record.tx_id, shard_id, ok,
                                             now=self.sim.now, reason=reason)
        if self.fault is not None:
            duplicates = self.fault.duplicate_votes(record, shard_id, ok)
            for index in range(duplicates):
                self.sim.schedule(
                    self.fault.stale_delay() * (index + 1),
                    self._replay_vote, record.tx_id, shard_id, ok, reason)

    def _replay_vote(self, tx_id: str, shard_id: int, ok: bool,
                     reason: Optional[str]) -> None:
        """A stale duplicate vote arrives (idempotent-or-rejected)."""
        if self.coordinator.retain_records and tx_id not in self.coordinator.records:
            return
        self.coordinator.record_prepare_vote(tx_id, shard_id, ok,
                                             now=self.sim.now, reason=reason)

    def _submit_vote(self, record: DistributedTxRecord, shard_id: int, ok: bool,
                     reason: Optional[str]) -> None:
        chaincode = ReferenceCommitteeChaincode()
        vote = chaincode.new_transaction(
            "prepareOK" if ok else "prepareNotOK",
            {"tx_id": record.tx_id, "shard_id": shard_id},
            client_id=record.transaction.client_id,
        )

        def on_receipt(receipt: Any) -> None:
            before = record.outcome
            self._record_vote(record, shard_id, ok, reason)
            decided_state = None
            if receipt.result and isinstance(receipt.result, dict):
                decided_state = receipt.result.get("state")
            decided = record.outcome is not DistributedTxOutcome.PENDING
            if decided and before is DistributedTxOutcome.PENDING:
                # Sanity: the replicated state machine must agree with the
                # local bookkeeping (both implement Figure 6).
                if decided_state == CoordinatorState.ABORTED.value:
                    assert record.outcome is DistributedTxOutcome.ABORTED
                self._send_decision(record)

        self._ref_watchers[vote.tx_id] = on_receipt
        self._route_ref(vote, attempt=record.redrives)

    # --------------------------------------------------------- home: decision
    def _send_decision(self, record: DistributedTxRecord,
                       only_shards: Optional[List[int]] = None) -> None:
        if self.coordinator.crashed:
            return  # recovery re-drives decided-but-unsent decisions
        if (self.fault is not None
                and self.fault.crash_coordinator(record, "decide")):
            self._crash_coordinator()
            return  # decided but unsent: re-driven at recovery
        committed = record.outcome is DistributedTxOutcome.COMMITTED
        if committed:
            per_shard = self.splitter.commit_transactions(record.transaction,
                                                          self.shard_of)
        else:
            per_shard = self.splitter.abort_transactions(record.transaction,
                                                         self.shard_of)
        if only_shards is not None:
            per_shard = {shard: tx for shard, tx in per_shard.items()
                         if shard in only_shards}
        sent = self._decisions_sent.setdefault(record.tx_id, set())
        for shard_id in sorted(per_shard):
            sent.add(shard_id)
            extra_delay = (self.fault.decision_delay(record, shard_id)
                           if self.fault is not None else 0.0)
            self._route(due=self.sim.now + self.config.relay_delay + extra_delay,
                        dest=shard_id, op="decision", txs=(per_shard[shard_id],),
                        tx_id=record.tx_id, home=self.shard_id,
                        attempt=record.redrives)
        if self.partition.adversary is not None and self.config.prepare_timeout is not None:
            # Under an armed adversary a decision's first-contact member may
            # swallow it; the deadline re-drives it through a rotated member.
            self.sim.schedule(self.config.prepare_timeout,
                              self._check_decision_deadline, record.tx_id)

    def handle_ack(self, command: Command) -> None:
        """A participant executed its CommitTx/AbortTx and acked (step 2)."""
        tx_id, shard_id = command.tx_id, command.origin
        record = self.coordinator.records.get(tx_id)
        self.coordinator.record_commit_ack(tx_id, shard_id, now=self.sim.now)
        if record is None:
            return  # pruned (stale ack) — counted by the coordinator
        if self.fault is not None:
            duplicates = self.fault.duplicate_acks(record, shard_id)
            for index in range(duplicates):
                self.sim.schedule(self.fault.stale_delay() * (index + 1),
                                  self._replay_ack, tx_id, shard_id)
        if record.all_acks_in:
            self._finish(record)

    def _replay_ack(self, tx_id: str, shard_id: int) -> None:
        """A stale duplicate commit ack arrives (a counted no-op)."""
        if self.coordinator.retain_records and tx_id not in self.coordinator.records:
            return
        self.coordinator.record_commit_ack(tx_id, shard_id, now=self.sim.now)

    # ------------------------------------------- home: re-drives and recovery
    def _check_decision_deadline(self, tx_id: str) -> None:
        record = self.coordinator.records.get(tx_id)
        if (record is None or record.phase is DistributedTxPhase.DONE
                or record.outcome is DistributedTxOutcome.PENDING):
            return
        if self.coordinator.crashed:
            self.sim.schedule(self.config.prepare_timeout,
                              self._check_decision_deadline, tx_id)
            return
        missing = [shard for shard in record.shards
                   if shard not in record.commit_acks]
        if missing:
            self.coordinator.mark_redriven(record)
            self._send_decision(record, only_shards=missing)

    def _check_prepare_deadline(self, tx_id: str) -> None:
        """The prepare deadline passed: re-drive the shards with missing votes.

        Unlike the legacy engine, the home cannot see which participants are
        merely parked in their local admission queues, so it re-drives every
        missing-vote shard; participants ignore re-driven prepares for
        transactions they are still waiting or already admitted on, which
        makes the re-drive a no-op exactly where the legacy skip applied.
        """
        record = self.coordinator.records.get(tx_id)
        if (record is None or record.outcome is not DistributedTxOutcome.PENDING
                or record.phase is DistributedTxPhase.DONE):
            return
        if self.coordinator.crashed:
            self.sim.schedule(self.config.prepare_timeout,
                              self._check_prepare_deadline, tx_id)
            return
        if record.prepare_deadline is None or record.prepare_deadline > self.sim.now:
            delay = (record.prepare_deadline - self.sim.now
                     if record.prepare_deadline is not None
                     else self.config.prepare_timeout)
            self.sim.schedule(max(delay, 1e-9), self._check_prepare_deadline, tx_id)
            return
        missing = [shard for shard in record.shards
                   if shard not in record.prepare_votes]
        if missing:
            self.coordinator.mark_redriven(record)
            record.prepare_deadline = self.sim.now + self.config.prepare_timeout
            self._send_prepares(record, only_shards=missing)
        else:
            record.prepare_deadline = self.sim.now + self.config.prepare_timeout
            self.sim.schedule(self.config.prepare_timeout,
                              self._check_prepare_deadline, tx_id)

    def _crash_coordinator(self) -> None:
        if self.coordinator.crashed:
            return  # one recovery is already scheduled
        self.coordinator.crash()
        delay = self.fault.recovery_delay() if self.fault is not None else 1.0
        self.sim.schedule(delay, self._recover_coordinator)

    def _recover_coordinator(self) -> None:
        """Replay buffered votes/acks, then re-drive unfinished transactions."""
        if not self.coordinator.crashed:
            return
        report = self.coordinator.recover(now=self.sim.now)
        for record in report.completed:
            self._finish(record)
        for record in report.restart:
            self.coordinator.mark_redriven(record)
            if (record.phase is DistributedTxPhase.BEGINNING
                    and self.config.use_reference_committee):
                self._submit_begin_tx(record)
                continue
            missing = [shard for shard in record.shards
                       if shard not in record.prepare_votes]
            self._send_prepares(record, only_shards=missing or list(record.shards))
        for record in report.redrive:
            sent = self._decisions_sent.get(record.tx_id, set())
            unsent = [shard for shard in record.shards
                      if shard not in record.commit_acks and shard not in sent]
            if unsent:
                self.coordinator.mark_redriven(record)
                self._send_decision(record, only_shards=unsent)

    # ------------------------------------------------------- home: completion
    def _finish(self, record: DistributedTxRecord) -> None:
        self._decisions_sent.pop(record.tx_id, None)
        target = self._completion.pop(record.tx_id, None)
        if target is None:
            return  # already reported, or fire-and-forget
        if callable(target):
            target(record)
        elif target == PARENT:
            self.partition.emit_tx_done(record)
        else:
            self._route(due=self.sim.now + self.config.relay_delay,
                        dest=target, op="client_done", tx_id=record.tx_id,
                        committed=record.outcome is DistributedTxOutcome.COMMITTED,
                        reason=record.abort_reason, latency=record.latency,
                        epoch=self.partition.current_epoch)

    # --------------------------------------------------------- participant role
    def handle_prepare(self, command: Command) -> None:
        """A home's PrepareTx arrived: admit it against the local lock mirror."""
        tx_id = command.tx_id
        prepare_tx = command.txs[0]
        self._tx_home[tx_id] = command.home
        if self.manager is None:
            # First-conflict-aborts policy: the on-chain lock check is the
            # admission, exactly as in the legacy engine.
            self._launch_prepare(prepare_tx, tx_id, command.home, command.attempt)
            return
        if tx_id in self._parked:
            return  # still waiting for locks; the original will vote
        if tx_id in self._tx_keys:
            # Re-driven prepare for an already-admitted transaction (its vote
            # went missing): lock re-acquisition is re-entrant, so simply
            # re-execute through a rotated member and re-vote.
            self._launch_prepare(prepare_tx, tx_id, command.home, command.attempt)
            return
        keys = tuple(prepare_tx.keys)
        self._tx_keys[tx_id] = keys
        now = self.sim.now
        outstanding: Set[str] = set()
        wounded: List[str] = []
        try:
            for key in keys:
                result = self.manager.acquire(key, tx_id, now=now,
                                              timestamp=tuple(command.priority))
                wounded.extend(result.wounded)
                if not result.granted:
                    outstanding.add(key)
        except DeadlockDetected:
            self.deadlocks_detected += 1
            self.manager.cancel_wait(tx_id)
            self._wound_victims(wounded)
            # Partial grants stay held until the abort decision executes.
            self._send_vote(tx_id, command.home, False,
                            "deadlock detected in the waits-for graph")
            return
        self._wound_victims(wounded)
        if not outstanding:
            self._launch_prepare(prepare_tx, tx_id, command.home, command.attempt)
            return
        self._parked[tx_id] = _Parked(tx_id=tx_id, prepare_tx=prepare_tx,
                                      home=command.home, attempt=command.attempt,
                                      keys_outstanding=outstanding)
        self.sim.schedule(self.config.wait_timeout, self._check_wait_timeout, tx_id)

    def _launch_prepare(self, prepare_tx: Transaction, tx_id: str, home: int,
                        attempt: int) -> None:
        def on_receipt(receipt: Any) -> None:
            ok = receipt.status is TxStatus.COMMITTED
            self._send_vote(tx_id, home, ok, receipt.error)

        self.partition.watch(prepare_tx.tx_id, on_receipt)
        self.partition.cluster.submit([prepare_tx], attempt=attempt)

    def _on_lock_grant(self, tx_id: str, key: str) -> None:
        parked = self._parked.get(tx_id)
        if parked is None:
            return
        parked.keys_outstanding.discard(key)
        if not parked.keys_outstanding:
            # The grant notification pays the relay hop (mirroring the legacy
            # dispatch relay); the launch re-checks _parked so a decision
            # arriving in between cancels it.
            self.sim.schedule(self.config.relay_delay, self._launch_parked, tx_id)

    def _launch_parked(self, tx_id: str) -> None:
        parked = self._parked.pop(tx_id, None)
        if parked is None:
            return  # decided (or timed out) while the grant was in flight
        self._launch_prepare(parked.prepare_tx, tx_id, parked.home, parked.attempt)

    def _check_wait_timeout(self, tx_id: str) -> None:
        parked = self._parked.get(tx_id)
        if parked is None or not parked.keys_outstanding:
            return  # admitted (or a launch is already scheduled)
        del self._parked[tx_id]
        self.wait_timeouts += 1
        for key in parked.keys_outstanding:
            self.manager.cancel_wait(tx_id, key)
        self._send_vote(tx_id, parked.home, False,
                        f"lock wait timed out after {self.config.wait_timeout}s")

    def _wound_victims(self, wounded: List[str]) -> None:
        for victim in wounded:
            self.wounded_transactions += 1
            self._wound(victim)

    def _wound(self, victim_tx_id: str) -> None:
        """Wound-wait: abort the younger holder through its home's vote path.

        The wounding shard votes NotOK itself; if it already voted OK the
        home records an equivocation and aborts the undecided transaction —
        same terminal state as the legacy unvoted-shard preference.
        """
        home = self._tx_home.get(victim_tx_id)
        if home is None:
            return  # already decided and cleaned up locally
        self._send_vote(victim_tx_id, home, False,
                        "wounded by an older transaction")

    def _send_vote(self, tx_id: str, home: int, ok: bool,
                   reason: Optional[str]) -> None:
        self._route(due=self.sim.now + self.config.relay_delay, dest=home,
                    op="vote", tx_id=tx_id, origin=self.shard_id, ok=ok,
                    reason=reason)

    def handle_decision(self, command: Command) -> None:
        """A home's CommitTx/AbortTx arrived: execute it and ack."""
        tx_id = command.tx_id
        decision_tx = command.txs[0]
        home = command.home
        parked = self._parked.pop(tx_id, None)
        if parked is not None and self.manager is not None:
            self.manager.cancel_wait(tx_id)

        def on_receipt(receipt: Any) -> None:
            if self.manager is not None:
                self.manager.finish(tx_id)
            self._tx_keys.pop(tx_id, None)
            self._tx_home.pop(tx_id, None)
            self._route(due=self.sim.now + self.config.relay_delay, dest=home,
                        op="ack", tx_id=tx_id, origin=self.shard_id)

        self.partition.watch(decision_tx.tx_id, on_receipt)
        self.partition.cluster.submit([decision_tx], attempt=command.attempt)

    # ------------------------------------------------------------------- stats
    @property
    def stats(self):
        return self.coordinator.stats
