"""Streaming open-loop client driver for the sharded system.

The seed harness pre-generated every client transaction before the run (via
``WorkloadGenerator.batch``), so a paper-scale run (Figs. 13/14: 100k+
transactions across many shards) paid for all transactions up front and held
them in memory for the whole simulation.  :class:`OpenLoopDriver` replaces
that with a BLOCKBENCH-style **open-loop** arrival process: transactions are
generated *lazily, one batch per arrival tick*, submitted at a fixed rate
regardless of completion, and forgotten as soon as they complete — so memory
is bounded by the number of in-flight transactions, not the run length.

Determinism: the driver's entire arrival process is derived from the
simulator clock and the workload generator's seeded RNG, so a given
``(system seed, driver config)`` pair always produces the identical
transaction stream and identical commit/abort counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.system import ShardedBlockchain
from repro.errors import ConfigurationError
from repro.txn.coordinator import DistributedTxOutcome, DistributedTxRecord
from repro.workloads.generator import WorkloadGenerator


@dataclass
class DriverStats:
    """Aggregate statistics kept by an open-loop driver.

    Latencies are accumulated as running sums (not per-transaction lists) so
    the driver's footprint stays constant over arbitrarily long runs.
    """

    submitted: int = 0
    committed: int = 0
    aborted: int = 0
    in_flight: int = 0
    max_in_flight: int = 0
    #: Arrivals dropped on the floor by the ``max_in_flight`` admission bound.
    dropped_arrivals: int = 0
    latency_sum: float = 0.0
    latency_count: int = 0
    #: Abort counts bucketed by cause (lock-conflict, wait-timeout, deadlock,
    #: wounded, insufficient-funds, other) — a handful of keys, so the
    #: breakdown stays O(1) in memory like the rest of the stats.
    abort_reasons: Dict[str, int] = field(default_factory=dict)
    #: Completions bucketed by the epoch the system was in when the
    #: transaction finished — one pair of counters per epoch, so the
    #: footprint grows with the number of reconfigurations, not the run
    #: length.  Quantifies what an epoch transition cost (Figure 12).
    epoch_committed: Dict[int, int] = field(default_factory=dict)
    epoch_aborted: Dict[int, int] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        return self.committed + self.aborted

    @property
    def abort_rate(self) -> float:
        return self.aborted / self.completed if self.completed else 0.0

    @property
    def mean_latency(self) -> float:
        return self.latency_sum / self.latency_count if self.latency_count else 0.0

    def merge(self, other: "DriverStats") -> None:
        """Fold another driver's counters into this one (scale-out merging)."""
        self.submitted += other.submitted
        self.committed += other.committed
        self.aborted += other.aborted
        self.in_flight += other.in_flight
        self.max_in_flight += other.max_in_flight
        self.dropped_arrivals += other.dropped_arrivals
        self.latency_sum += other.latency_sum
        self.latency_count += other.latency_count
        for key, value in other.abort_reasons.items():
            self.abort_reasons[key] = self.abort_reasons.get(key, 0) + value
        for key, value in other.epoch_committed.items():
            self.epoch_committed[key] = self.epoch_committed.get(key, 0) + value
        for key, value in other.epoch_aborted.items():
            self.epoch_aborted[key] = self.epoch_aborted.get(key, 0) + value


def abort_bucket(reason: Optional[str]) -> str:
    """Classify an abort reason into a small fixed set of buckets.

    Module-level so both driver implementations — the legacy in-process one
    below and the scale-out engine's in-partition
    :class:`repro.core.homecoord.PartitionDriver` — bucket identically.
    """
    if reason is None:
        return "other"
    if "locked by" in reason:
        return "lock-conflict"
    if "wait timed out" in reason:
        return "wait-timeout"
    if "deadlock" in reason:
        return "deadlock"
    if "wounded" in reason:
        return "wounded"
    if "insufficient funds" in reason:
        return "insufficient-funds"
    return "other"


class OpenLoopDriver:
    """Submits transactions to a :class:`ShardedBlockchain` at a fixed rate.

    Parameters
    ----------
    system:
        The sharded deployment to drive.
    rate_tps:
        Aggregate arrival rate in transactions per second of simulated time.
    max_transactions:
        Stop submitting after this many transactions (None = until the run's
        time bound).
    batch_size:
        Transactions generated and submitted per arrival tick.  Larger
        batches reduce scheduler overhead at a small cost in arrival-time
        granularity.
    max_in_flight:
        Optional admission bound: when this many transactions are
        outstanding, new arrivals are *dropped on the floor* rather than
        queued (the open-loop driver never slows down, matching BLOCKBENCH's
        behaviour under overload), keeping memory strictly bounded.
    workload:
        Transaction source; defaults to the system's configured benchmark
        with a seed derived from the system seed and ``stream_index``.
    stream_index:
        Distinguishes the default workload streams of several drivers on one
        system (each index draws an independent deterministic stream).
    """

    def __init__(self, system: ShardedBlockchain, rate_tps: float,
                 max_transactions: Optional[int] = None,
                 batch_size: int = 1,
                 max_in_flight: Optional[int] = None,
                 workload: Optional[WorkloadGenerator] = None,
                 client_id: str = "open-loop",
                 stream_index: int = 0,
                 vectorized: bool = False,
                 vector_batch: int = 256) -> None:
        if rate_tps <= 0:
            raise ConfigurationError("rate_tps must be positive")
        if batch_size < 1:
            raise ConfigurationError("batch_size must be at least 1")
        if max_in_flight is not None and max_in_flight < 1:
            raise ConfigurationError("max_in_flight must be at least 1")
        self.system = system
        self.rate_tps = rate_tps
        self.max_transactions = max_transactions
        self.batch_size = batch_size
        self.max_in_flight = max_in_flight
        self.client_id = client_id
        #: On the scale-out engine the arrival process itself moves into the
        #: partitions: each partition draws its own per-shard split of this
        #: driver's stream (see ``repro.core.homecoord.PartitionDriver``), so
        #: the parent holds no generator at all — only a plain spec the
        #: partitions rebuild their generators from.
        self._delegated = bool(getattr(system, "IN_PARTITION_DRIVERS", False))
        #: ``vectorized``/``vector_batch`` select block-sampled workload
        #: generation (a different deterministic stream, see the generator);
        #: in delegated mode they travel in the spec so every partition's
        #: split uses the same sampling layout.
        self._vectorized = vectorized
        self._vector_batch = vector_batch
        if self._delegated:
            if workload is not None:
                raise ConfigurationError(
                    "the scale-out engine generates workloads in-partition "
                    "from a config-derived spec; a custom WorkloadGenerator "
                    "instance requires the legacy engine (workers=None)")
            self.workload = None
            self._workload_seed = system.config.seed * 7919 + 1 + stream_index
        else:
            self.workload = workload or WorkloadGenerator(
                benchmark=system.config.benchmark,
                num_shards=system.config.num_shards,
                zipf_coefficient=system.config.zipf_coefficient,
                num_keys=system.config.num_keys,
                seed=system.config.seed * 7919 + 1 + stream_index,
                vectorized=vectorized, vector_batch=vector_batch,
            )
        self._stats = DriverStats()
        self._index: Optional[int] = None
        self._started = False

    @property
    def stats(self) -> DriverStats:
        """This driver's aggregate statistics (merged across partitions)."""
        if self._delegated and self._index is not None:
            return self.system.driver_stats(self._index)
        return self._stats

    @property
    def dropped_arrivals(self) -> int:
        return self.stats.dropped_arrivals

    def _spec(self) -> Dict[str, object]:
        """The picklable description partitions rebuild this driver from."""
        return {
            "rate_tps": self.rate_tps,
            "max_transactions": self.max_transactions,
            "batch_size": self.batch_size,
            "max_in_flight": self.max_in_flight,
            "client_id": self.client_id,
            "workload": {
                "benchmark": self.system.config.benchmark,
                "num_shards": self.system.config.num_shards,
                "zipf_coefficient": self.system.config.zipf_coefficient,
                "num_keys": self.system.config.num_keys,
                "seed": self._workload_seed,
                "vectorized": self._vectorized,
                "vector_batch": self._vector_batch,
            },
        }

    # ---------------------------------------------------------------- driving
    def start(self) -> "OpenLoopDriver":
        """Begin the arrival process at the current simulated time."""
        if not self._started:
            self._started = True
            if self._delegated:
                self._index = self.system.register_partition_driver(self._spec())
            else:
                self.system.runtime.spawn(self._tick)
        return self

    def _tick(self) -> None:
        stats = self._stats
        remaining = (None if self.max_transactions is None
                     else self.max_transactions - stats.submitted)
        if remaining is not None and remaining <= 0:
            return
        count = self.batch_size if remaining is None else min(self.batch_size, remaining)
        now = self.system.runtime.now
        for _ in range(count):
            if (self.max_in_flight is not None
                    and stats.in_flight >= self.max_in_flight):
                stats.dropped_arrivals += 1
                continue
            tx = self.workload.next_transaction(client_id=self.client_id, now=now)
            stats.submitted += 1
            stats.in_flight += 1
            if stats.in_flight > stats.max_in_flight:
                stats.max_in_flight = stats.in_flight
            self.system.submit_transaction(tx, on_complete=self._on_complete)
        self.system.runtime.schedule(self.batch_size / self.rate_tps, self._tick)

    def _on_complete(self, record: DistributedTxRecord) -> None:
        stats = self._stats
        stats.in_flight -= 1
        epoch = self.system.current_epoch
        if record.outcome is DistributedTxOutcome.COMMITTED:
            stats.committed += 1
            stats.epoch_committed[epoch] = stats.epoch_committed.get(epoch, 0) + 1
        else:
            stats.aborted += 1
            stats.epoch_aborted[epoch] = stats.epoch_aborted.get(epoch, 0) + 1
            bucket = abort_bucket(record.abort_reason)
            stats.abort_reasons[bucket] = stats.abort_reasons.get(bucket, 0) + 1
        latency = record.latency
        if latency is not None:
            stats.latency_sum += latency
            stats.latency_count += 1

    # ------------------------------------------------------------------- runs
    def run_to_completion(self, drain_timeout: float = 120.0,
                          max_events: Optional[int] = None) -> DriverStats:
        """Run until every submitted transaction completes (or times out).

        Drives the simulation in bounded slices: first until ``max_transactions``
        have been submitted, then up to ``drain_timeout`` additional simulated
        seconds for the tail to commit.  Requires ``max_transactions``.
        """
        if self.max_transactions is None:
            raise ConfigurationError("run_to_completion requires max_transactions")
        self.start()
        # Drive through the engine-neutral advance API so the same loop works
        # on the legacy engine and the scale-out barrier loop.  One stats
        # fetch per slice: in delegated mode each fetch is a worker RPC.
        system = self.system
        sim = system.sim
        submit_horizon = self.max_transactions / self.rate_tps
        system.advance(sim.now + submit_horizon, max_events=max_events)
        deadline = sim.now + drain_timeout
        while sim.now < deadline:
            stats = self.stats
            if stats.completed >= stats.submitted or not system.pending_activity():
                break
            system.advance(min(sim.now + 1.0, deadline), max_events=max_events)
        return self.stats


def attach_open_loop_drivers(system: ShardedBlockchain, count: int, rate_tps: float,
                             max_transactions: Optional[int] = None,
                             batch_size: int = 1,
                             max_in_flight: Optional[int] = None) -> List[OpenLoopDriver]:
    """Create and start ``count`` drivers, splitting ``rate_tps`` evenly."""
    if count < 1:
        raise ConfigurationError("count must be at least 1")
    drivers = []
    for index in range(count):
        if max_transactions is None:
            per_driver = None
        else:
            # Distribute the remainder over the first drivers so the totals
            # sum exactly to max_transactions.
            per_driver = max_transactions // count + (1 if index < max_transactions % count else 0)
        driver = OpenLoopDriver(
            system, rate_tps=rate_tps / count, max_transactions=per_driver,
            batch_size=batch_size, max_in_flight=max_in_flight,
            client_id=f"open-loop-{index}", stream_index=index,
        )
        driver.start()
        drivers.append(driver)
    return drivers
