"""Configuration of the end-to-end sharded blockchain."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence

from repro.errors import ConfigurationError
from repro.sharding.reconfiguration import STRATEGIES as RECONFIGURATION_STRATEGIES
from repro.sharding.sizing import minimum_committee_size


@dataclass
class ShardedSystemConfig:
    """Parameters of a sharded deployment.

    The defaults correspond to the paper's local-cluster Smallbank setup:
    AHL+ inside every shard, a reference committee for cross-shard 2PC, and
    hash partitioning of the key space.
    """

    num_shards: int = 2
    committee_size: int = 4
    protocol: str = "AHL+"
    use_reference_committee: bool = True
    benchmark: str = "smallbank"
    num_keys: int = 2_000
    zipf_coefficient: float = 0.0
    consensus_overrides: Dict[str, Any] = field(default_factory=dict)
    regions: Optional[Sequence[str]] = None
    latency_model: Any = None
    #: One-way delay charged when the client/coordinator relays a message
    #: between the reference committee and a transaction committee.
    relay_delay: float = 0.002
    #: When False, completed transactions' coordinator records are discarded
    #: immediately, bounding memory on long (100k+ transaction) runs.
    retain_tx_records: bool = True
    #: How conflicting cross-shard lock acquisitions are scheduled:
    #: "abort" (seed-faithful first-conflict abort), "wait" (FIFO queues with
    #: timeout aborts and waits-for-graph deadlock detection) or "wound-wait"
    #: (older transactions wound younger lock holders; deadlock-free).
    conflict_policy: str = "abort"
    #: How long a queued PrepareTx may wait for its locks before the shard
    #: votes PrepareNotOK ("wait timeout").  Only used by the queueing
    #: policies.
    wait_timeout: float = 5.0
    #: Detect waits-for cycles under the "wait" policy and abort the
    #: requester that would close the cycle (instead of waiting for the
    #: timeout to break it).
    deadlock_detection: bool = True
    #: When set, transactions whose prepare votes are still missing after
    #: this many seconds get their prepares re-driven (recovering from
    #: dropped votes / lost prepares).  None — the seed default — disables
    #: the deadline machinery entirely.
    prepare_timeout: Optional[float] = None
    #: Fault-injection scenario (a :class:`repro.txn.faults.FaultScenario`)
    #: consulted at the coordination protocol's decision points.  None — the
    #: default — keeps the message flow bit-identical to the seed.
    fault_scenario: Any = None
    #: Byzantine adversary (a :class:`repro.core.adversary.AdversaryConfig`)
    #: placing seed-deterministic corruptions per committee — at most each
    #: committee's ``f`` — and optionally scheduling a mid-run TEE rollback
    #: attack.  Composes with ``fault_scenario`` and the epoch lifecycle
    #: (corruption follows logical nodes across migrations).  None — the
    #: default — places nothing and leaves the run bit-identical to the
    #: honest path.
    adversary: Any = None
    #: When set, every monitor series/tracker switches to bounded storage
    #: (running count/sum + N-sample reservoir) instead of keeping one entry
    #: per commit — pair with retain_tx_records=False and a "headers" ledger
    #: retention override for fully bounded 1M-transaction runs.
    max_series_samples: Optional[int] = None
    #: Length of an epoch in simulated seconds (Section 5.1).  ``None`` — the
    #: seed default — leaves the deployment in its initial epoch forever;
    #: explicit reconfigurations via ``perform_reconfiguration`` still work.
    epoch_duration: Optional[float] = None
    #: When True the system runs the full epoch lifecycle on its own: at
    #: every ``epoch_duration`` boundary it derives fresh randomness from the
    #: beacon protocol, re-assigns committees and executes the migration with
    #: ``reconfiguration_strategy``.  Requires ``epoch_duration``.  The event
    #: flow of a run whose first boundary lies beyond the horizon is
    #: identical to the seed's (one pending-but-unfired timer aside).
    auto_reconfigure: bool = False
    #: Migration strategy used by automatic epoch transitions: "swap-batch"
    #: (the paper's B = log n batched swap) or "swap-all" (the naive
    #: everyone-at-once baseline).
    reconfiguration_strategy: str = "swap-batch"
    #: Bandwidth assumed for shard state transfer; together with the
    #: destination shard's actual ``StateStore.size_bytes()`` it determines
    #: how long a transitioning node is absent (``state_transfer_seconds``).
    state_bandwidth_bps: float = 1e9
    #: Spacing between consecutive swap batches of one transition (a batch
    #: never starts before the previous one's transfers finished, so this is
    #: a floor, not an exact cadence).
    swap_batch_interval: float = 10.0
    #: Scale-out execution (see :mod:`repro.core.scaleout`).  ``None`` — the
    #: default — runs the legacy single-simulation engine, bit-identical to
    #: every committed baseline.  An integer switches to the partitioned
    #: engine: each shard becomes its own sub-simulation and cross-shard
    #: traffic is exchanged at deterministic time barriers.  ``workers=1``
    #: drains every partition inline (the seed-faithful scale-out path);
    #: ``workers=N`` spreads the partitions over N worker processes.  The
    #: engine guarantees bit-identical commit/abort/view-change fingerprints
    #: for any worker count of the same seed+config.  Build via
    #: ``repro.core.build_system`` (plain ``ShardedBlockchain(config)``
    #: rejects a workers setting it would silently ignore).
    workers: Optional[int] = None
    #: Barrier window length in simulated seconds for the scale-out engine.
    #: Must not exceed ``relay_delay`` — the engine's conservative lookahead:
    #: every parent<->shard hop pays at least the relay delay, so windows of
    #: at most that length exchange all cross-partition effects in time.
    #: ``None`` uses ``relay_delay`` (the largest valid window, i.e. the
    #: fewest barriers).  Any valid value yields identical outcomes.
    barrier_interval: Optional[float] = None
    #: How the scale-out engine groups partitions onto worker processes:
    #: "load" (default) balances partitions over workers by a deterministic
    #: per-partition weight — the sampled share of the key space each shard
    #: owns, computed once from config before the run, never from runtime
    #: load — while "modulo" keeps the legacy ``position % workers`` rule.
    #: Both choices yield bit-identical simulation results (grouping only
    #: affects which OS process drains a partition, never event order).
    worker_assignment: str = "load"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigurationError("num_shards must be at least 1")
        if self.committee_size < 1:
            raise ConfigurationError("committee_size must be at least 1")
        if self.benchmark not in ("smallbank", "kvstore"):
            raise ConfigurationError("benchmark must be 'smallbank' or 'kvstore'")
        if self.conflict_policy not in ("abort", "wait", "wound-wait"):
            raise ConfigurationError(
                "conflict_policy must be 'abort', 'wait' or 'wound-wait'")
        if self.wait_timeout <= 0:
            raise ConfigurationError("wait_timeout must be positive")
        if self.prepare_timeout is not None and self.prepare_timeout <= 0:
            raise ConfigurationError("prepare_timeout must be positive when set")
        if self.epoch_duration is not None and self.epoch_duration <= 0:
            raise ConfigurationError("epoch_duration must be positive when set")
        if self.auto_reconfigure and self.epoch_duration is None:
            raise ConfigurationError("auto_reconfigure requires epoch_duration")
        if self.reconfiguration_strategy not in RECONFIGURATION_STRATEGIES:
            raise ConfigurationError(
                f"reconfiguration_strategy must be one of {RECONFIGURATION_STRATEGIES}")
        if self.state_bandwidth_bps <= 0:
            raise ConfigurationError("state_bandwidth_bps must be positive")
        if self.swap_batch_interval < 0:
            raise ConfigurationError("swap_batch_interval must be non-negative")
        if self.adversary is not None:
            from repro.core.adversary import AdversaryConfig

            if not isinstance(self.adversary, AdversaryConfig):
                raise ConfigurationError(
                    "adversary must be an AdversaryConfig (or None)")
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError("workers must be at least 1 when set")
        if self.worker_assignment not in ("load", "modulo"):
            raise ConfigurationError(
                "worker_assignment must be 'load' or 'modulo'")
        if self.barrier_interval is not None:
            if self.workers is None:
                raise ConfigurationError("barrier_interval requires workers")
            if self.barrier_interval <= 0:
                raise ConfigurationError("barrier_interval must be positive")
            if self.barrier_interval > self.relay_delay:
                raise ConfigurationError(
                    "barrier_interval must not exceed relay_delay: the relay "
                    "delay is the engine's cross-partition lookahead")

    @property
    def total_nodes(self) -> int:
        """Consensus nodes in the deployment (excluding the reference committee)."""
        return self.num_shards * self.committee_size

    @staticmethod
    def for_adversary(network_size: int, byzantine_fraction: float,
                      protocol: str = "AHL+", **kwargs: Any) -> "ShardedSystemConfig":
        """Derive shard count and committee size from the adversarial power.

        This mirrors the Figure-14 configurations: the committee size is the
        minimum that keeps the faulty-committee probability below 2^-20, and
        the number of shards is however many such committees the network can
        sustain.
        """
        resilience = 0.5 if protocol.upper().startswith("AHL") else 1.0 / 3.0
        committee = minimum_committee_size(network_size, byzantine_fraction,
                                           resilience=resilience)
        num_shards = max(1, network_size // committee)
        return ShardedSystemConfig(num_shards=num_shards, committee_size=committee,
                                   protocol=protocol, **kwargs)
