"""Splitting a logical transaction into per-shard prepare/commit/abort invocations.

Section 6.3 describes the manual chaincode refactoring: ``sendPayment``
becomes ``preparePayment`` / ``commitPayment`` / ``abortPayment``.  A
:class:`TransactionSplitter` knows, for one benchmark, how to produce those
per-shard invocations from the original transaction; the sharded system uses
it to drive the coordination protocol.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.ledger.transaction import Transaction
from repro.workloads.kvstore import KVStoreChaincode
from repro.workloads.smallbank import SmallbankChaincode, account_key


class TransactionSplitter(ABC):
    """Produces per-shard prepare / commit / abort transactions."""

    @abstractmethod
    def shards_touched(self, tx: Transaction, shard_of_key: Callable[[str], int]) -> List[int]:
        """The shards a transaction involves."""

    @abstractmethod
    def prepare_transactions(self, tx: Transaction,
                             shard_of_key: Callable[[str], int]) -> Dict[int, Transaction]:
        """Per-shard PrepareTx invocations."""

    @abstractmethod
    def commit_transactions(self, tx: Transaction,
                            shard_of_key: Callable[[str], int]) -> Dict[int, Transaction]:
        """Per-shard CommitTx invocations."""

    @abstractmethod
    def abort_transactions(self, tx: Transaction,
                           shard_of_key: Callable[[str], int]) -> Dict[int, Transaction]:
        """Per-shard AbortTx invocations."""


class SmallbankSplitter(TransactionSplitter):
    """Splits Smallbank ``sendPayment`` transactions (Figure 4's account model)."""

    def __init__(self) -> None:
        self.chaincode = SmallbankChaincode()

    def _accounts_by_shard(self, tx: Transaction,
                           shard_of_key: Callable[[str], int]) -> Dict[int, List[str]]:
        if tx.function != "sendPayment":
            raise WorkloadError(f"cannot split smallbank function {tx.function!r}")
        source = str(tx.args["from"])
        destination = str(tx.args["to"])
        by_shard: Dict[int, List[str]] = {}
        for account in (source, destination):
            shard = shard_of_key(account_key(account))
            by_shard.setdefault(shard, []).append(account)
        return by_shard

    def shards_touched(self, tx: Transaction, shard_of_key: Callable[[str], int]) -> List[int]:
        return sorted(self._accounts_by_shard(tx, shard_of_key))

    def prepare_transactions(self, tx: Transaction,
                             shard_of_key: Callable[[str], int]) -> Dict[int, Transaction]:
        source = str(tx.args["from"])
        amount = int(tx.args["amount"])
        result = {}
        for shard, accounts in self._accounts_by_shard(tx, shard_of_key).items():
            result[shard] = self.chaincode.new_transaction(
                "preparePayment",
                {"tx_id": tx.tx_id, "accounts": accounts, "amount": amount,
                 "debit": source},
                client_id=tx.client_id,
            )
        return result

    def commit_transactions(self, tx: Transaction,
                            shard_of_key: Callable[[str], int]) -> Dict[int, Transaction]:
        source = str(tx.args["from"])
        destination = str(tx.args["to"])
        amount = int(tx.args["amount"])
        deltas = {source: -amount, destination: amount}
        result = {}
        for shard, accounts in self._accounts_by_shard(tx, shard_of_key).items():
            result[shard] = self.chaincode.new_transaction(
                "commitPayment",
                {"tx_id": tx.tx_id,
                 "deltas": [(account, deltas[account]) for account in accounts]},
                client_id=tx.client_id,
            )
        return result

    def abort_transactions(self, tx: Transaction,
                           shard_of_key: Callable[[str], int]) -> Dict[int, Transaction]:
        result = {}
        for shard, accounts in self._accounts_by_shard(tx, shard_of_key).items():
            result[shard] = self.chaincode.new_transaction(
                "abortPayment",
                {"tx_id": tx.tx_id, "accounts": accounts},
                client_id=tx.client_id,
            )
        return result


class KVStoreSplitter(TransactionSplitter):
    """Splits KVStore ``multi_put`` transactions (3 updates per transaction in Section 7)."""

    def __init__(self) -> None:
        self.chaincode = KVStoreChaincode()

    def _writes_by_shard(self, tx: Transaction,
                         shard_of_key: Callable[[str], int]) -> Dict[int, List[Tuple[str, object]]]:
        if tx.function not in ("multi_put", "put", "update"):
            raise WorkloadError(f"cannot split kvstore function {tx.function!r}")
        if tx.function in ("put", "update"):
            writes: Sequence[Tuple[str, object]] = [(str(tx.args["key"]), tx.args.get("value"))]
        else:
            writes = [(str(key), value) for key, value in tx.args["writes"]]
        by_shard: Dict[int, List[Tuple[str, object]]] = {}
        for key, value in writes:
            by_shard.setdefault(shard_of_key(key), []).append((key, value))
        return by_shard

    def shards_touched(self, tx: Transaction, shard_of_key: Callable[[str], int]) -> List[int]:
        return sorted(self._writes_by_shard(tx, shard_of_key))

    def prepare_transactions(self, tx: Transaction,
                             shard_of_key: Callable[[str], int]) -> Dict[int, Transaction]:
        return {
            shard: self.chaincode.new_transaction(
                "prepare_multi_put", {"tx_id": tx.tx_id, "writes": writes},
                client_id=tx.client_id)
            for shard, writes in self._writes_by_shard(tx, shard_of_key).items()
        }

    def commit_transactions(self, tx: Transaction,
                            shard_of_key: Callable[[str], int]) -> Dict[int, Transaction]:
        return {
            shard: self.chaincode.new_transaction(
                "commit_multi_put", {"tx_id": tx.tx_id, "writes": writes},
                client_id=tx.client_id)
            for shard, writes in self._writes_by_shard(tx, shard_of_key).items()
        }

    def abort_transactions(self, tx: Transaction,
                           shard_of_key: Callable[[str], int]) -> Dict[int, Transaction]:
        return {
            shard: self.chaincode.new_transaction(
                "abort_multi_put", {"tx_id": tx.tx_id, "writes": writes},
                client_id=tx.client_id)
            for shard, writes in self._writes_by_shard(tx, shard_of_key).items()
        }


def splitter_for(benchmark: str) -> TransactionSplitter:
    """The splitter implementation for a benchmark name."""
    if benchmark == "smallbank":
        return SmallbankSplitter()
    if benchmark == "kvstore":
        return KVStoreSplitter()
    raise WorkloadError(f"no transaction splitter for benchmark {benchmark!r}")
