"""The end-to-end sharded blockchain (Figure 1b).

``ShardedBlockchain`` builds, inside one discrete-event simulation:

* ``num_shards`` consensus committees (AHL+ by default), each owning a
  disjoint hash partition of the key space and running the benchmark
  chaincode;
* optionally a **reference committee** running the 2PC state-machine
  chaincode of Section 6.2;
* a coordination layer that drives every transaction through the Figure-5
  flow: BeginTx at the reference committee, PrepareTx at the involved
  committees (acquiring 2PL locks), vote relay, then CommitTx / AbortTx.

Clients interact through :meth:`submit_transaction`, which accepts ordinary
benchmark transactions (e.g. Smallbank ``sendPayment``) and hides the
sharding — the usability extension discussed in Section 6.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.consensus.base import CommitEvent
from repro.consensus.cluster import ConsensusCluster
from repro.core.config import ShardedSystemConfig
from repro.core.splitters import splitter_for
from repro.errors import ConfigurationError
from repro.ledger.chaincode import ChaincodeRegistry
from repro.ledger.transaction import Transaction, TransactionReceipt, TxStatus
from repro.sharding.assignment import assign_committees
from repro.sharding.committee import CommitteeAssignment
from repro.sim.latency import LanLatencyModel
from repro.sim.monitor import Monitor
from repro.sim.network import Network
from repro.sim.simulator import Simulator
from repro.txn.coordinator import (
    DistributedTxOutcome,
    DistributedTxRecord,
    TwoPhaseCommitCoordinator,
)
from repro.txn.reference_committee import CoordinatorState, ReferenceCommitteeChaincode
from repro.workloads.generator import shard_of_key
from repro.workloads.kvstore import KVStoreWorkload
from repro.workloads.smallbank import SmallbankWorkload

#: Shard id used for the reference committee's cluster.
REFERENCE_SHARD_ID = 900


@dataclass
class ShardedRunResult:
    """Summary of a sharded-system run."""

    duration: float
    committed_transactions: int
    aborted_transactions: int
    throughput_tps: float
    abort_rate: float
    mean_latency: float
    cross_shard_fraction: float
    per_shard_committed: Dict[int, int] = field(default_factory=dict)
    reference_committee_transactions: int = 0


class ShardedBlockchain:
    """A sharded permissioned blockchain deployment inside one simulation."""

    def __init__(self, config: ShardedSystemConfig) -> None:
        self.config = config
        self.sim = Simulator(seed=config.seed)
        self.network = Network(self.sim, config.latency_model or LanLatencyModel())
        self.monitor = Monitor(max_samples=config.max_series_samples)
        self.coordinator = TwoPhaseCommitCoordinator(
            config.use_reference_committee, retain_records=config.retain_tx_records)
        self.splitter = splitter_for(config.benchmark)
        self._completion_callbacks: Dict[str, Callable[[DistributedTxRecord], None]] = {}
        self._receipt_watchers: Dict[str, Callable[[TransactionReceipt], None]] = {}
        self._single_shard_started: Dict[str, float] = {}
        self.single_shard_committed = 0
        self.single_shard_aborted = 0

        self.assignment = self._form_committees()
        self.shards: Dict[int, ConsensusCluster] = {}
        for shard_id in range(config.num_shards):
            self.shards[shard_id] = self._build_shard_cluster(shard_id)
        self.reference: Optional[ConsensusCluster] = None
        if config.use_reference_committee:
            self.reference = self._build_reference_cluster()
        self._populate_states()
        self._attach_observers()

    # ---------------------------------------------------------------- set-up
    def _form_committees(self) -> CommitteeAssignment:
        node_ids = list(range(self.config.total_nodes))
        return assign_committees(node_ids, self.config.num_shards, seed=self.config.seed)

    def _benchmark_registry(self) -> ChaincodeRegistry:
        registry = ChaincodeRegistry()
        if self.config.benchmark == "smallbank":
            registry.register(SmallbankWorkload(num_accounts=self.config.num_keys).chaincode)
        else:
            registry.register(KVStoreWorkload(num_keys=self.config.num_keys).chaincode)
        return registry

    def _build_shard_cluster(self, shard_id: int) -> ConsensusCluster:
        return ConsensusCluster(
            protocol=self.config.protocol,
            n=self.config.committee_size,
            config_overrides=dict(self.config.consensus_overrides),
            registry_factory=self._benchmark_registry,
            regions=self.config.regions,
            seed=self.config.seed + shard_id,
            shard_id=shard_id,
            sim=self.sim,
            network=self.network,
            max_series_samples=self.config.max_series_samples,
        )

    def _build_reference_cluster(self) -> ConsensusCluster:
        def registry_factory() -> ChaincodeRegistry:
            registry = ChaincodeRegistry()
            registry.register(ReferenceCommitteeChaincode())
            return registry

        return ConsensusCluster(
            protocol=self.config.protocol,
            n=self.config.committee_size,
            config_overrides=dict(self.config.consensus_overrides),
            registry_factory=registry_factory,
            regions=self.config.regions,
            seed=self.config.seed + REFERENCE_SHARD_ID,
            shard_id=REFERENCE_SHARD_ID,
            sim=self.sim,
            network=self.network,
            max_series_samples=self.config.max_series_samples,
        )

    def _populate_states(self) -> None:
        """Load every shard's replicas with the keys that hash to that shard."""
        if self.config.benchmark == "smallbank":
            from repro.workloads.smallbank import initial_balances

            items = list(initial_balances(self.config.num_keys).items())
        else:
            workload = KVStoreWorkload(num_keys=self.config.num_keys)
            items = [(workload.key_name(i), "0" * 8) for i in range(min(self.config.num_keys, 5000))]
        for key, value in items:
            shard_id = self.shard_of_key(key)
            for replica in self.shards[shard_id].replicas:
                replica.state.put(key, value)

    def _attach_observers(self) -> None:
        for shard_id, cluster in self.shards.items():
            observer = cluster.honest_observer()
            observer.on_commit(self._make_observer(shard_id))
        if self.reference is not None:
            observer = self.reference.honest_observer()
            observer.on_commit(self._make_observer(REFERENCE_SHARD_ID))

    def _make_observer(self, shard_id: int) -> Callable[[CommitEvent], None]:
        def on_commit(event: CommitEvent) -> None:
            for receipt in event.receipts:
                watcher = self._receipt_watchers.pop(receipt.tx_id, None)
                if watcher is not None:
                    watcher(receipt)
        return on_commit

    # --------------------------------------------------------------- routing
    def shard_of_key(self, key: str) -> int:
        """Hash partitioning of the key space over the shards (memoized).

        Delegates to the workload generator's routing function so the client
        side and the system side share one (cached) definition of the
        partitioning.
        """
        return shard_of_key(key, self.config.num_shards)

    def shards_for_transaction(self, tx: Transaction) -> List[int]:
        """The shards whose state a benchmark transaction touches."""
        try:
            return self.splitter.shards_touched(tx, self.shard_of_key)
        except Exception:
            shards = {self.shard_of_key(key) for key in tx.keys}
            return sorted(shards) if shards else [0]

    # ------------------------------------------------------------ submission
    def submit_transaction(self, tx: Transaction,
                           on_complete: Optional[Callable[[DistributedTxRecord], None]] = None) -> DistributedTxRecord:
        """Submit a benchmark transaction; the system routes and coordinates it."""
        shards = self.shards_for_transaction(tx)
        record = self.coordinator.begin(tx, shards, now=self.sim.now)
        if on_complete is not None:
            self._completion_callbacks[tx.tx_id] = on_complete
        if not record.is_cross_shard:
            self._submit_single_shard(record)
        elif self.config.use_reference_committee:
            self._submit_begin_tx(record)
        else:
            self.coordinator.mark_begin_executed(tx.tx_id)
            self._send_prepares(record)
        return record

    # -------------------------------------------------------- single shard tx
    def _submit_single_shard(self, record: DistributedTxRecord) -> None:
        shard_id = record.shards[0]
        tx = record.transaction
        self.coordinator.mark_begin_executed(tx.tx_id)

        def on_receipt(receipt: TransactionReceipt) -> None:
            ok = receipt.status is TxStatus.COMMITTED
            self.coordinator.record_prepare_vote(tx.tx_id, shard_id, ok, now=self.sim.now,
                                                 reason=receipt.error)
            self.coordinator.record_commit_ack(tx.tx_id, shard_id, now=self.sim.now)
            self._finish(record)

        self._watch(tx, on_receipt)
        self._relay(lambda: self.shards[shard_id].submit([tx]))

    # --------------------------------------------------------- cross shard tx
    def _submit_begin_tx(self, record: DistributedTxRecord) -> None:
        assert self.reference is not None
        chaincode = ReferenceCommitteeChaincode()
        begin = chaincode.new_transaction(
            "beginTx", {"tx_id": record.tx_id, "num_committees": len(record.shards)},
            client_id=record.transaction.client_id,
        )

        def on_receipt(receipt: TransactionReceipt) -> None:
            self.coordinator.mark_begin_executed(record.tx_id)
            self._send_prepares(record)

        self._watch(begin, on_receipt)
        self._relay(lambda: self.reference.submit([begin]))

    def _send_prepares(self, record: DistributedTxRecord) -> None:
        prepares = self.splitter.prepare_transactions(record.transaction, self.shard_of_key)
        for shard_id, prepare_tx in prepares.items():
            self._watch(prepare_tx, self._make_prepare_watcher(record, shard_id))
            self._relay(lambda sid=shard_id, ptx=prepare_tx: self.shards[sid].submit([ptx]))

    def _make_prepare_watcher(self, record: DistributedTxRecord, shard_id: int):
        def on_receipt(receipt: TransactionReceipt) -> None:
            ok = receipt.status is TxStatus.COMMITTED
            if self.config.use_reference_committee:
                self._submit_vote(record, shard_id, ok, receipt.error)
            else:
                before = record.outcome
                self.coordinator.record_prepare_vote(record.tx_id, shard_id, ok,
                                                     now=self.sim.now, reason=receipt.error)
                if record.outcome is not DistributedTxOutcome.PENDING and before is DistributedTxOutcome.PENDING:
                    self._send_decision(record)
        return on_receipt

    def _submit_vote(self, record: DistributedTxRecord, shard_id: int, ok: bool,
                     reason: Optional[str]) -> None:
        assert self.reference is not None
        chaincode = ReferenceCommitteeChaincode()
        vote = chaincode.new_transaction(
            "prepareOK" if ok else "prepareNotOK",
            {"tx_id": record.tx_id, "shard_id": shard_id},
            client_id=record.transaction.client_id,
        )

        def on_receipt(receipt: TransactionReceipt) -> None:
            before = record.outcome
            self.coordinator.record_prepare_vote(record.tx_id, shard_id, ok,
                                                 now=self.sim.now, reason=reason)
            decided_state = None
            if receipt.result and isinstance(receipt.result, dict):
                decided_state = receipt.result.get("state")
            decided = record.outcome is not DistributedTxOutcome.PENDING
            if decided and before is DistributedTxOutcome.PENDING:
                # Sanity: the replicated state machine must agree with the
                # local bookkeeping (both implement Figure 6).
                if decided_state == CoordinatorState.ABORTED.value:
                    assert record.outcome is DistributedTxOutcome.ABORTED
                self._send_decision(record)

        self._watch(vote, on_receipt)
        self._relay(lambda: self.reference.submit([vote]))

    def _send_decision(self, record: DistributedTxRecord) -> None:
        committed = record.outcome is DistributedTxOutcome.COMMITTED
        if committed:
            per_shard = self.splitter.commit_transactions(record.transaction, self.shard_of_key)
        else:
            per_shard = self.splitter.abort_transactions(record.transaction, self.shard_of_key)
        for shard_id, decision_tx in per_shard.items():
            def on_receipt(receipt: TransactionReceipt, sid=shard_id) -> None:
                self.coordinator.record_commit_ack(record.tx_id, sid, now=self.sim.now)
                if record.all_acks_in:
                    self._finish(record)
            self._watch(decision_tx, on_receipt)
            self._relay(lambda sid=shard_id, dtx=decision_tx: self.shards[sid].submit([dtx]))

    # ------------------------------------------------------------- completion
    def _finish(self, record: DistributedTxRecord) -> None:
        callback = self._completion_callbacks.pop(record.tx_id, None)
        if callback is not None:
            callback(record)

    def _watch(self, tx: Transaction, callback: Callable[[TransactionReceipt], None]) -> None:
        self._receipt_watchers[tx.tx_id] = callback

    def _relay(self, action: Callable[[], None]) -> None:
        """Submit after the configured client-relay delay."""
        self.sim.schedule(self.config.relay_delay, action)

    # ------------------------------------------------------------------- run
    def run(self, duration: float, max_events: Optional[int] = None) -> ShardedRunResult:
        """Advance the simulation and summarise the coordinator statistics.

        Uses the batched drain loop (:meth:`Simulator.run_batched`), which is
        observationally equivalent to the one-at-a-time loop but cheaper on
        message-heavy runs.
        """
        self.sim.run_batched(until=self.sim.now + duration, max_events=max_events)
        return self.result(duration)

    def result(self, duration: float) -> ShardedRunResult:
        stats = self.coordinator.stats
        committed = stats.committed
        aborted = stats.aborted
        per_shard = {
            shard_id: cluster.honest_observer().committed_transactions()
            for shard_id, cluster in self.shards.items()
        }
        reference_txs = (self.reference.honest_observer().committed_transactions()
                         if self.reference is not None else 0)
        return ShardedRunResult(
            duration=duration,
            committed_transactions=committed,
            aborted_transactions=aborted,
            throughput_tps=committed / duration if duration > 0 else 0.0,
            abort_rate=stats.abort_rate,
            mean_latency=stats.mean_latency,
            cross_shard_fraction=(stats.cross_shard / stats.started if stats.started else 0.0),
            per_shard_committed=per_shard,
            reference_committee_transactions=reference_txs,
        )

    # -------------------------------------------------------- reconfiguration
    def perform_reconfiguration(self, strategy: str, at_time: float,
                                state_transfer_seconds: float = 20.0,
                                batch_size: Optional[int] = None,
                                batch_interval: float = 10.0) -> None:
        """Schedule an epoch transition (Figure 12).

        ``swap-all`` stops every replica of every shard for the state-transfer
        duration (the naive approach); ``swap-batch`` stops at most ``B``
        replicas per committee at a time, spaced ``batch_interval`` apart, so
        each committee keeps a quorum and the system stays available.
        """
        if strategy not in ("swap-all", "swap-batch"):
            raise ConfigurationError(f"unknown reconfiguration strategy {strategy!r}")
        from repro.sharding.reconfiguration import swap_batch_size

        for cluster in self.shards.values():
            replicas = cluster.replicas
            if strategy == "swap-all":
                for replica in replicas:
                    self.sim.schedule_at(at_time, replica.crash)
                    self.sim.schedule_at(at_time + state_transfer_seconds, replica.recover)
            else:
                batch = batch_size or swap_batch_size(len(replicas))
                batch = min(batch, max(1, cluster.config.fault_tolerance(len(replicas))))
                start = at_time
                for index in range(0, len(replicas), batch):
                    for replica in replicas[index:index + batch]:
                        self.sim.schedule_at(start, replica.crash)
                        self.sim.schedule_at(start + state_transfer_seconds, replica.recover)
                    start += max(batch_interval, state_transfer_seconds)

    def throughput_over_time(self, bucket_seconds: float = 5.0) -> List[tuple]:
        """Committed-transaction rate over time, aggregated across shards."""
        commits: List[tuple] = []
        for record in self.coordinator.records.values():
            if record.outcome is DistributedTxOutcome.COMMITTED and record.completed_at is not None:
                commits.append((record.completed_at, 1.0))
        from repro.sim.monitor import TimeSeries
        series = TimeSeries("commits")
        series.samples = commits
        return series.bucketed_rate(bucket_seconds, until=self.sim.now)
