"""The end-to-end sharded blockchain (Figure 1b).

``ShardedBlockchain`` builds, inside one discrete-event simulation:

* ``num_shards`` consensus committees (AHL+ by default), each owning a
  disjoint hash partition of the key space and running the benchmark
  chaincode;
* optionally a **reference committee** running the 2PC state-machine
  chaincode of Section 6.2;
* a coordination layer that drives every transaction through the Figure-5
  flow: BeginTx at the reference committee, PrepareTx at the involved
  committees (acquiring 2PL locks), vote relay, then CommitTx / AbortTx.

Clients interact through :meth:`submit_transaction`, which accepts ordinary
benchmark transactions (e.g. Smallbank ``sendPayment``) and hides the
sharding — the usability extension discussed in Section 6.4.

Lock scheduling and fault injection
-----------------------------------
The coordination layer is policy- and fault-pluggable:

* ``ShardedSystemConfig.conflict_policy`` selects how conflicting cross-shard
  lock acquisitions are scheduled.  ``"abort"`` (the default) reproduces the
  seed behaviour bit-for-bit: prepares are sent immediately and a conflicting
  prepare fails at the shard, aborting the transaction.  ``"wait"`` and
  ``"wound-wait"`` route prepares through a coordinator-side admission mirror
  of the shards' lock tables (:class:`repro.txn.locks.LockManager`), so
  conflicting prepares queue (FIFO + timeout + deadlock detection) or are
  scheduled by transaction age (wound-wait) instead of aborting on first
  conflict.
* ``ShardedSystemConfig.fault_scenario`` attaches a
  :class:`repro.txn.faults.FaultScenario` that is consulted at each protocol
  step (prepare relay, vote relay, decision, ack) to inject shard stalls,
  vote drops, stale replays and coordinator crashes.  Paired with
  ``prepare_timeout`` (deadline-driven prepare re-drives) and the
  coordinator's crash/recovery support, every injected fault is recoverable.

With the default configuration (``abort`` policy, no faults, no prepare
timeout) none of this machinery schedules events or draws randomness — the
message flow is identical to the seed implementation, which
``tests/test_txn_differential.py`` verifies outcome-for-outcome against an
inline seed-faithful copy.

Epochs and live reconfiguration
-------------------------------
The deployment works in epochs (Section 5).  Every system carries an
:class:`~repro.sharding.epochs.EpochSchedule`; epoch 0 is the construction
assignment.  At an epoch boundary — automatic every
``ShardedSystemConfig.epoch_duration`` seconds when ``auto_reconfigure`` is
set, or explicit via :meth:`ShardedBlockchain.perform_reconfiguration` — the
system (1) derives fresh randomness from the beacon protocol (an isolated
sub-simulation, so the main event stream is untouched), (2) recomputes the
committee assignment from that randomness, (3) builds a
:class:`~repro.sharding.reconfiguration.ReconfigurationPlan` and executes it
as *real membership changes*: transitioning replicas leave their old
committee, pay a state-transfer delay derived from the destination shard's
actual ``StateStore.size_bytes()`` (``state_transfer_seconds`` under
``state_bandwidth_bps``), then join and serve in the new committee — and
(4) records the transition in the epoch schedule.  ``swap-batch`` moves at
most ``B = log n`` members of a committee at a time so every committee keeps
a quorum of active members throughout; ``swap-all`` moves everyone at once
and stalls the deployment for the transfer window (Figure 12's trough).

With the default configuration (no ``epoch_duration``, no explicit
reconfiguration) none of this schedules events or draws randomness: the
no-epoch run is event-for-event identical to the seed implementation, which
``tests/test_epoch_lifecycle.py`` verifies differentially.

Scale-out and the barrier-exchange model
----------------------------------------
``ShardedSystemConfig.workers`` switches the deployment to the partitioned
engine in :mod:`repro.core.scaleout` (build via
:func:`repro.core.build_system`).  The model is conservative synchronous
parallel discrete-event simulation:

* Every shard committee becomes a :class:`~repro.core.scaleout.ShardPartition`
  — its own :class:`Simulator`, :class:`Network` and RNG streams — while the
  coordination layer (2PC coordinator, reference committee, admission, fault
  injection, epoch control) stays on the parent simulation.
* The only parent->shard traffic is a handful of call sites that all pay at
  least ``relay_delay`` before the shard acts (``_relay_shard_single``,
  ``_relay_cohort``, and the epoch/adversary control operations); the only
  shard->parent traffic is commit receipts and migration reports, which
  carry their exact occurrence times.  ``relay_delay`` is therefore a
  *lookahead*: during any window of length ``barrier_interval <=
  relay_delay``, no side can affect the other's present.
* Execution alternates in windows ``(T, T + barrier]``: partitions drain
  their windows first (buffered commands injected at their exact due
  times), their outputs are injected into the parent at their exact
  occurrence times in a fixed (time, shard, sequence) order, then the
  parent drains its window and the commands it emitted are shipped at the
  next barrier.

Because commands and receipts carry exact times — never barrier-aligned
ones — the fingerprint is invariant under the barrier length and under the
worker count: ``workers=1`` (all partitions drained inline, the
seed-faithful scale-out path) and ``workers=N`` (partitions spread over N
processes) produce bit-identical commit/abort/view-change outcomes, which
``tests/test_scaleout_differential.py`` verifies across the fault, epoch
and adversary matrix.  The legacy ``workers=None`` engine shares one global
simulation (and one network jitter RNG) across all clusters, so its event
interleaving — and thus its fingerprints — are its own; committed baselines
pin that path, and it stays bit-identical to the seed.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.consensus.base import CommitEvent
from repro.consensus.cluster import ConsensusCluster
from repro.core.adversary import AdversaryState
from repro.core.config import ShardedSystemConfig
from repro.core.splitters import splitter_for
from repro.errors import ConfigurationError
from repro.ledger.chaincode import ChaincodeRegistry
from repro.ledger.index import LedgerIndex
from repro.ledger.state import StateStore
from repro.ledger.transaction import Transaction, TransactionReceipt, TxStatus
from repro.sharding.assignment import assign_committees
from repro.sharding.beacon_protocol import derive_epoch_randomness
from repro.sharding.committee import CommitteeAssignment
from repro.sharding.epochs import EpochSchedule
from repro.sharding.reconfiguration import (
    STRATEGIES as RECONFIGURATION_STRATEGIES,
    ReconfigurationPlan,
    plan_reconfiguration,
    state_transfer_seconds,
)
from repro.sim.latency import LanLatencyModel
from repro.sim.monitor import Monitor
from repro.sim.network import Network
from repro.runtime.base import as_runtime
from repro.sim.simulator import Simulator
from repro.txn.coordinator import (
    DistributedTxOutcome,
    DistributedTxPhase,
    DistributedTxRecord,
    TwoPhaseCommitCoordinator,
)
from repro.txn.locks import DeadlockDetected, LockManager
from repro.txn.reference_committee import CoordinatorState, ReferenceCommitteeChaincode
from repro.workloads.generator import shard_of_key
from repro.workloads.kvstore import KVStoreWorkload
from repro.workloads.smallbank import SmallbankWorkload

#: Shard id used for the reference committee's cluster.
REFERENCE_SHARD_ID = 900


@dataclass
class ShardedRunResult:
    """Summary of a sharded-system run."""

    duration: float
    committed_transactions: int
    aborted_transactions: int
    throughput_tps: float
    abort_rate: float
    mean_latency: float
    cross_shard_fraction: float
    per_shard_committed: Dict[int, int] = field(default_factory=dict)
    reference_committee_transactions: int = 0
    current_epoch: int = 0
    reconfigurations_completed: int = 0


@dataclass
class EpochTransitionStats:
    """What one executed epoch transition did (kept in ``epoch_transitions``)."""

    epoch: int
    strategy: str
    started_at: float
    #: Randomness locked in by the beacon protocol (None if it gave up).
    randomness: Optional[int]
    beacon_rounds: int
    beacon_seconds: float
    nodes_to_move: int
    plan: ReconfigurationPlan
    nodes_moved: int = 0
    completed_at: Optional[float] = None
    #: Per shard, the minimum over the transition of
    #: ``active members - quorum size`` sampled after each swap batch took
    #: effect: non-negative everywhere means the committee could commit at
    #: every point of the migration (the paper's liveness criterion).
    min_active_margin: Dict[int, int] = field(default_factory=dict)


@dataclass
class _ActiveTransition:
    """Runtime bookkeeping of the transition currently executing."""

    plan: ReconfigurationPlan
    stats: EpochTransitionStats
    transfer_override: Optional[float]
    batch_interval: float
    old_map: Dict[int, int]
    new_map: Dict[int, int]


@dataclass
class _PendingPrepare:
    """A PrepareTx parked in the admission layer waiting for its locks."""

    record: DistributedTxRecord
    shard_id: int
    prepare_tx: Transaction
    keys_outstanding: Set[str]
    extra_delay: float = 0.0


class _LockAdmission:
    """Coordinator-side admission mirror of the shards' lock tables.

    Under the ``wait`` / ``wound-wait`` policies, a cross-shard PrepareTx is
    only relayed to its shard once the admission :class:`LockManager` grants
    all the locks the prepare will take there.  The mirror uses namespaced
    keys (``s<shard>/<key>``) in one shared manager so waits-for cycles that
    span shards are visible to the deadlock detector.  Locks are released as
    each shard acknowledges the transaction's commit/abort decision (the
    moment the on-chain locks are gone).
    """

    def __init__(self, system: "ShardedBlockchain") -> None:
        self.system = system
        self.manager = LockManager(StateStore(),
                                   policy=system.config.conflict_policy,
                                   on_grant=self._on_grant,
                                   detect_deadlocks=system.config.deadlock_detection)
        self._pending: Dict[Tuple[str, int], _PendingPrepare] = {}
        self._keys: Dict[str, Dict[int, List[str]]] = {}   # tx -> shard -> ns keys
        self.wounded_transactions = 0
        self.deadlocks_detected = 0
        self.wait_timeouts = 0

    @staticmethod
    def _nskey(shard_id: int, key: str) -> str:
        return f"s{shard_id}/{key}"

    @staticmethod
    def _priority(record: DistributedTxRecord) -> Tuple[float, int]:
        """Wound-wait age priority: submission time, begin order as tie-break.

        Using *submission* age (rather than admission-request order) is what
        makes wound-wait meaningful here: the coordination layer can reorder
        transactions across consensus blocks, so an older transaction can
        find its key held by a younger one — and wounds it.
        """
        return (record.started_at, record.begin_seq)

    # ----------------------------------------------------------------- request
    def request(self, record: DistributedTxRecord, shard_id: int,
                prepare_tx: Transaction, extra_delay: float = 0.0) -> str:
        """Try to admit a shard's PrepareTx: "granted", "waiting" or "deadlock".

        When waiting, the prepare is parked and dispatched by the grant
        callback once the last lock is handed over; a timeout abort is
        scheduled under the configured ``wait_timeout``.
        """
        tx_id = record.tx_id
        pending_key = (tx_id, shard_id)
        if pending_key in self._pending:
            return "waiting"
        ns_keys = [self._nskey(shard_id, key) for key in prepare_tx.keys]
        self._keys.setdefault(tx_id, {})[shard_id] = ns_keys
        now = self.system.runtime.now
        priority = self._priority(record)
        outstanding: Set[str] = set()
        wounded: List[str] = []
        try:
            for key in ns_keys:
                result = self.manager.acquire(key, tx_id, now=now,
                                              timestamp=priority)
                wounded.extend(result.wounded)
                if not result.granted:
                    outstanding.add(key)
        except DeadlockDetected:
            self.deadlocks_detected += 1
            self.manager.cancel_wait(tx_id)
            self._wound_victims(wounded)
            return "deadlock"
        self._wound_victims(wounded)
        if not outstanding:
            return "granted"
        self._pending[pending_key] = _PendingPrepare(
            record=record, shard_id=shard_id, prepare_tx=prepare_tx,
            keys_outstanding=outstanding, extra_delay=extra_delay,
        )
        self.system.runtime.schedule(self.system.config.wait_timeout,
                                 self._check_timeout, tx_id, shard_id)
        return "waiting"

    def _wound_victims(self, wounded: List[str]) -> None:
        for victim in wounded:
            self.wounded_transactions += 1
            self.system._wound(victim)

    def _on_grant(self, tx_id: str, key: str) -> None:
        for pending_key, pending in list(self._pending.items()):
            if pending_key[0] != tx_id:
                continue
            pending.keys_outstanding.discard(key)
            if not pending.keys_outstanding:
                del self._pending[pending_key]
                self.system._dispatch_admitted_prepare(pending)

    def _check_timeout(self, tx_id: str, shard_id: int) -> None:
        pending = self._pending.pop((tx_id, shard_id), None)
        if pending is None:
            return
        self.wait_timeouts += 1
        for key in pending.keys_outstanding:
            self.manager.cancel_wait(tx_id, key)
        self.system._handle_prepare_outcome(
            pending.record, shard_id, False,
            reason=f"lock wait timed out after {self.system.config.wait_timeout}s",
        )

    # ----------------------------------------------------------------- release
    def release_shard(self, tx_id: str, shard_id: int) -> None:
        """The shard executed the decision: hand its locks to the next waiters."""
        for key in self._keys.get(tx_id, {}).get(shard_id, ()):
            self.manager.release(key, tx_id)

    def finish(self, tx_id: str) -> None:
        """The transaction is done everywhere: drop every trace of it."""
        for pending_key in [pk for pk in self._pending if pk[0] == tx_id]:
            del self._pending[pending_key]
        self.manager.finish(tx_id)
        self._keys.pop(tx_id, None)


class ShardedBlockchain:
    """A sharded permissioned blockchain deployment inside one simulation."""

    #: The scale-out subclass flips this; the base engine refuses a config
    #: whose ``workers`` it would silently ignore.
    SUPPORTS_WORKERS = False

    def __init__(self, config: ShardedSystemConfig) -> None:
        if config.workers is not None and not self.SUPPORTS_WORKERS:
            raise ConfigurationError(
                "config.workers requires the scale-out engine; build the "
                "system via repro.core.build_system(config)")
        self.config = config
        self.sim = Simulator(seed=config.seed)
        #: All protocol-side scheduling (2PC deadlines, relays, epoch timers)
        #: goes through the runtime seam; ``self.sim`` remains the concrete
        #: simulator for harness-only draining (``advance``/``pending_activity``).
        self.runtime = as_runtime(self.sim)
        self.network = Network(self.runtime, config.latency_model or LanLatencyModel())
        self.monitor = Monitor(max_samples=config.max_series_samples)
        self.coordinator = TwoPhaseCommitCoordinator(
            config.use_reference_committee, retain_records=config.retain_tx_records,
            prepare_timeout=config.prepare_timeout)
        self.splitter = splitter_for(config.benchmark)
        self._completion_callbacks: Dict[str, Callable[[DistributedTxRecord], None]] = {}
        self._receipt_watchers: Dict[str, Callable[[TransactionReceipt], None]] = {}
        self._single_shard_started: Dict[str, float] = {}
        self.single_shard_committed = 0
        self.single_shard_aborted = 0
        self._fault = self._bind_fault_scenario()
        self.admission: Optional[_LockAdmission] = self._build_admission()
        self._decisions_sent: Dict[str, Set[int]] = {}
        #: Relay per-shard prepare/decision submissions as one cohort event
        #: (order-identical to the seed's one-event-per-shard scheduling; the
        #: differential test flips this off to prove it).
        self._cohort_relay = True

        self.assignment = self._form_committees()
        #: Armed Byzantine adversary (see ``ShardedSystemConfig.adversary``):
        #: corruption placement happens before the clusters are built because
        #: each replica snapshots its shard's strategy at construction.
        self.adversary: Optional[AdversaryState] = (
            AdversaryState.place(config, self.assignment)
            if config.adversary is not None else None)
        self.shards: Dict[int, ConsensusCluster] = {}
        for shard_id in range(config.num_shards):
            self.shards[shard_id] = self._build_shard_cluster(shard_id)
        self.reference: Optional[ConsensusCluster] = self._maybe_build_reference()
        self._arm_adversary()
        self._populate_states()
        self._attach_observers()

        #: The live epoch schedule; epoch 0 is the construction assignment.
        self.epochs = EpochSchedule(
            epoch_duration=(config.epoch_duration
                            if config.epoch_duration is not None else 600.0))
        self.epochs.start_epoch(self.assignment, now=0.0)
        self.epochs.complete_transition(0.0)
        #: Logical node id (as used in committee assignments) -> node id of
        #: the replica currently embodying that node.  A migration retires
        #: the old replica and binds the logical node to its successor in
        #: the destination cluster.
        self._replica_of: Dict[int, int] = self._initial_replica_map()
        #: History of executed epoch transitions (stats + their plans).
        self.epoch_transitions: List[EpochTransitionStats] = []
        #: The commit-time analytics index (None until ``enable_analytics``).
        self.analytics: Optional[LedgerIndex] = None
        self._active_transition: Optional[_ActiveTransition] = None
        self.reconfigurations_completed = 0
        self.epoch_boundaries_skipped = 0
        if config.auto_reconfigure:
            # The only scheduling the epoch machinery does by default-off
            # config: one timer per boundary.  A run that never reaches the
            # first boundary is event-for-event identical to the seed path.
            for cluster in self.shards.values():
                cluster.enable_request_tracking()
            self.runtime.schedule(config.epoch_duration, self._epoch_tick)

    # ---------------------------------------------------------------- set-up
    def _bind_fault_scenario(self):
        """Bind the configured fault scenario to this engine.

        The scale-out engine overrides this to return None: there the fault
        hooks are consulted by per-partition deep copies of the scenario (one
        per home coordinator), never by the parent.
        """
        fault = self.config.fault_scenario
        if fault is not None:
            fault.bind(self)
        return fault

    def _build_admission(self) -> Optional["_LockAdmission"]:
        """Build the coordinator-side lock-admission mirror (queueing policies).

        The scale-out engine overrides this to return None: admission lives
        inside each partition's home coordinator instead of on the parent.
        """
        if self.config.conflict_policy != "abort":
            return _LockAdmission(self)
        return None

    def _maybe_build_reference(self) -> Optional[ConsensusCluster]:
        """Build the reference committee's cluster on this simulation.

        The scale-out engine overrides this to return None: there the
        reference committee is partition ``REFERENCE_SHARD_ID``, scheduled
        like any shard partition.
        """
        if self.config.use_reference_committee:
            return self._build_reference_cluster()
        return None

    def _form_committees(self) -> CommitteeAssignment:
        node_ids = list(range(self.config.total_nodes))
        return assign_committees(node_ids, self.config.num_shards, seed=self.config.seed)

    def _arm_adversary(self) -> None:
        """Arm the adversary on this simulation (scale-out arms per partition)."""
        if self.adversary is not None:
            self.adversary.arm(self)

    def _initial_replica_map(self) -> Dict[int, int]:
        """Logical node id -> physical node id of the construction assignment."""
        mapping: Dict[int, int] = {}
        for committee in self.assignment.committees:
            cluster = self.shards[committee.shard_id]
            for logical, replica in zip(committee.members, cluster.replicas):
                mapping[logical] = replica.node_id
        return mapping

    def _benchmark_registry(self) -> ChaincodeRegistry:
        registry = ChaincodeRegistry()
        if self.config.benchmark == "smallbank":
            registry.register(SmallbankWorkload(num_accounts=self.config.num_keys).chaincode)
        else:
            registry.register(KVStoreWorkload(num_keys=self.config.num_keys).chaincode)
        return registry

    def _build_shard_cluster(self, shard_id: int) -> ConsensusCluster:
        return ConsensusCluster(
            protocol=self.config.protocol,
            n=self.config.committee_size,
            config_overrides=dict(self.config.consensus_overrides),
            registry_factory=self._benchmark_registry,
            regions=self.config.regions,
            byzantine=(self.adversary.strategy_for(shard_id)
                       if self.adversary is not None else None),
            seed=self.config.seed + shard_id,
            shard_id=shard_id,
            sim=self.sim,
            network=self.network,
            max_series_samples=self.config.max_series_samples,
        )

    def _build_reference_cluster(self) -> ConsensusCluster:
        def registry_factory() -> ChaincodeRegistry:
            registry = ChaincodeRegistry()
            registry.register(ReferenceCommitteeChaincode())
            return registry

        return ConsensusCluster(
            protocol=self.config.protocol,
            n=self.config.committee_size,
            config_overrides=dict(self.config.consensus_overrides),
            registry_factory=registry_factory,
            regions=self.config.regions,
            byzantine=(self.adversary.reference_strategy
                       if self.adversary is not None else None),
            seed=self.config.seed + REFERENCE_SHARD_ID,
            shard_id=REFERENCE_SHARD_ID,
            sim=self.sim,
            network=self.network,
            max_series_samples=self.config.max_series_samples,
        )

    def _initial_items(self) -> List[Tuple[str, object]]:
        """The benchmark's initial (key, value) table, before shard routing."""
        if self.config.benchmark == "smallbank":
            from repro.workloads.smallbank import initial_balances

            return list(initial_balances(self.config.num_keys).items())
        workload = KVStoreWorkload(num_keys=self.config.num_keys)
        return [(workload.key_name(i), "0" * 8)
                for i in range(min(self.config.num_keys, 5000))]

    def populate_initial_state(self, shard_id: int, state: StateStore) -> None:
        """Load one shard's slice of the initial table into ``state``.

        The same population every shard replica got at construction — the
        rebuild oracle uses this to seed its replay engines so re-derived
        receipts match the live execution exactly.
        """
        for key, value in self._initial_items():
            if self.shard_of_key(key) == shard_id:
                state.put(key, value)

    def _populate_states(self) -> None:
        """Load every shard's replicas with the keys that hash to that shard."""
        for key, value in self._initial_items():
            shard_id = self.shard_of_key(key)
            for replica in self.shards[shard_id].replicas:
                replica.state.put(key, value)

    def _attach_observers(self) -> None:
        for shard_id, cluster in self.shards.items():
            cluster.subscribe_commits(self._make_observer(shard_id))
        if self.reference is not None:
            self.reference.subscribe_commits(self._make_observer(REFERENCE_SHARD_ID))

    def _make_observer(self, shard_id: int) -> Callable[[CommitEvent], None]:
        def on_commit(event: CommitEvent) -> None:
            for receipt in event.receipts:
                watcher = self._receipt_watchers.pop(receipt.tx_id, None)
                if watcher is not None:
                    watcher(receipt)
        return on_commit

    # --------------------------------------------------------------- routing
    def shard_of_key(self, key: str) -> int:
        """Hash partitioning of the key space over the shards (memoized).

        Delegates to the workload generator's routing function so the client
        side and the system side share one (cached) definition of the
        partitioning.
        """
        return shard_of_key(key, self.config.num_shards)

    def shards_for_transaction(self, tx: Transaction) -> List[int]:
        """The shards whose state a benchmark transaction touches."""
        try:
            return self.splitter.shards_touched(tx, self.shard_of_key)
        except Exception:
            shards = {self.shard_of_key(key) for key in tx.keys}
            return sorted(shards) if shards else [0]

    # ------------------------------------------------------------ submission
    def submit_transaction(self, tx: Transaction,
                           on_complete: Optional[Callable[[DistributedTxRecord], None]] = None) -> DistributedTxRecord:
        """Submit a benchmark transaction; the system routes and coordinates it."""
        shards = self.shards_for_transaction(tx)
        record = self.coordinator.begin(tx, shards, now=self.runtime.now)
        if on_complete is not None:
            self._completion_callbacks[tx.tx_id] = on_complete
        if not record.is_cross_shard:
            self._submit_single_shard(record)
            return record
        if (self._fault is not None and not self.coordinator.crashed
                and self._fault.crash_coordinator(record, "prepare")):
            self._crash_coordinator()
        if self.config.use_reference_committee:
            self._submit_begin_tx(record)
        else:
            self.coordinator.mark_begin_executed(tx.tx_id, now=self.runtime.now)
            self._send_prepares(record)
        return record

    # -------------------------------------------------------- single shard tx
    def _submit_single_shard(self, record: DistributedTxRecord) -> None:
        shard_id = record.shards[0]
        tx = record.transaction
        self.coordinator.mark_begin_executed(tx.tx_id, now=self.runtime.now)

        def on_receipt(receipt: TransactionReceipt) -> None:
            ok = receipt.status is TxStatus.COMMITTED
            self.coordinator.record_prepare_vote(tx.tx_id, shard_id, ok, now=self.runtime.now,
                                                 reason=receipt.error)
            self.coordinator.record_commit_ack(tx.tx_id, shard_id, now=self.runtime.now)
            if record.phase is DistributedTxPhase.DONE:
                self._finish(record)

        self._watch(tx, on_receipt)
        self._relay_shard_single(shard_id, tx)
        if self.config.prepare_timeout is not None:
            self.runtime.schedule(self.config.prepare_timeout,
                              self._check_single_shard_deadline, tx.tx_id)

    def _check_single_shard_deadline(self, tx_id: str) -> None:
        """Re-submit a single-shard transaction whose receipt never came.

        The single-shard mirror of the cross-shard prepare re-drive: under
        ``prepare_timeout`` a transaction lost in transit (e.g. submitted to
        a shard in the middle of a swap-all outage) is retried instead of
        hanging forever.  The receipt watcher is still registered, and the
        shards dedup re-submissions on their seen/committed id sets, so a
        retry that races the original is a no-op.
        """
        record = self.coordinator.records.get(tx_id)
        if (record is None or record.outcome is not DistributedTxOutcome.PENDING
                or record.phase is DistributedTxPhase.DONE or record.prepare_votes):
            return
        if record.prepare_deadline is None or record.prepare_deadline > self.runtime.now:
            delay = (record.prepare_deadline - self.runtime.now
                     if record.prepare_deadline is not None
                     else self.config.prepare_timeout)
            self.runtime.schedule(max(delay, 1e-9), self._check_single_shard_deadline, tx_id)
            return
        shard_id = record.shards[0]
        self.coordinator.mark_redriven(record)
        record.prepare_deadline = self.runtime.now + self.config.prepare_timeout
        self._relay_shard_single(shard_id, record.transaction,
                                 attempt=record.redrives)
        self.runtime.schedule(self.config.prepare_timeout,
                          self._check_single_shard_deadline, tx_id)

    # --------------------------------------------------------- cross shard tx
    def _submit_begin_tx(self, record: DistributedTxRecord) -> None:
        assert self.reference is not None
        if self.coordinator.crashed:
            return  # recovery restarts records still in BEGINNING
        chaincode = ReferenceCommitteeChaincode()
        begin = chaincode.new_transaction(
            "beginTx", {"tx_id": record.tx_id, "num_committees": len(record.shards)},
            client_id=record.transaction.client_id,
        )

        def on_receipt(receipt: TransactionReceipt) -> None:
            self.coordinator.mark_begin_executed(record.tx_id, now=self.runtime.now)
            self._send_prepares(record)

        self._watch(begin, on_receipt)
        attempt = record.redrives
        self._relay(lambda: self.reference.submit([begin], attempt=attempt))

    def _send_prepares(self, record: DistributedTxRecord,
                       only_shards: Optional[List[int]] = None) -> None:
        """Relay the per-shard PrepareTx cohort (admission- and fault-aware)."""
        if self.coordinator.crashed:
            return  # recovery re-drives undecided transactions
        prepares = self.splitter.prepare_transactions(record.transaction, self.shard_of_key)
        if only_shards is not None:
            prepares = {shard: tx for shard, tx in prepares.items()
                        if shard in only_shards}
        cohorts: Dict[float, List[Tuple[int, Transaction]]] = {}
        for shard_id, prepare_tx in prepares.items():
            extra_delay = 0.0
            if self._fault is not None:
                if self._fault.drop_prepare(record, shard_id):
                    continue  # the prepare-deadline re-drive recovers this
                extra_delay = self._fault.prepare_delay(record, shard_id)
            if self.admission is not None:
                status = self.admission.request(record, shard_id, prepare_tx,
                                                extra_delay)
                if status == "waiting":
                    continue
                if status == "deadlock":
                    self._handle_prepare_outcome(
                        record, shard_id, False,
                        reason="deadlock detected in the waits-for graph")
                    continue
            cohorts.setdefault(extra_delay, []).append((shard_id, prepare_tx))
        for extra_delay in sorted(cohorts):
            self._relay_prepare_group(record, cohorts[extra_delay], extra_delay)
        if self.config.prepare_timeout is not None:
            self.runtime.schedule(self.config.prepare_timeout,
                              self._check_prepare_deadline, record.tx_id)

    def _relay_shard_single(self, shard_id: int, tx: Transaction,
                            attempt: int = 0) -> None:
        """Relay one transaction to one shard after the client-relay delay.

        Together with :meth:`_relay_cohort` this is the *complete* set of
        parent-to-shard submission sites, which is what lets the scale-out
        engine override the pair to route submissions across partition
        boundaries instead.
        """
        self._relay(lambda: self.shards[shard_id].submit([tx], attempt=attempt))

    def _relay_cohort(self, group: List[Tuple[int, Transaction]],
                      extra_delay: float = 0.0, attempt: int = 0) -> None:
        """Relay per-shard submissions after the client-relay delay.

        As one scheduler event for the whole cohort by default — consecutive
        same-time events fire back to back anyway, so this is order-identical
        to the seed's one-event-per-shard scheduling (the differential test
        flips ``_cohort_relay`` off to prove it).  ``attempt`` (the record's
        re-drive count) rotates the receiving replica on retries so a lost
        submission is not re-pinned to the member that swallowed it."""
        if self._cohort_relay:
            def submit_group(batch=tuple(group)) -> None:
                for shard_id, tx in batch:
                    self.shards[shard_id].submit([tx], attempt=attempt)
            self.runtime.schedule(self.config.relay_delay + extra_delay, submit_group)
        else:
            for shard_id, tx in group:
                self.runtime.schedule(self.config.relay_delay + extra_delay,
                                  lambda sid=shard_id, stx=tx:
                                  self.shards[sid].submit([stx], attempt=attempt))

    def _relay_prepare_group(self, record: DistributedTxRecord,
                             group: List[Tuple[int, Transaction]],
                             extra_delay: float = 0.0) -> None:
        for shard_id, prepare_tx in group:
            self._watch(prepare_tx, self._make_prepare_watcher(record, shard_id))
        self._relay_cohort(group, extra_delay, attempt=record.redrives)

    def _dispatch_admitted_prepare(self, pending: _PendingPrepare) -> None:
        """A parked PrepareTx got its last lock: relay it now."""
        record = pending.record
        if record.outcome is not DistributedTxOutcome.PENDING:
            return  # decided (e.g. wounded or timed out elsewhere) meanwhile
        self._relay_prepare_group(record, [(pending.shard_id, pending.prepare_tx)],
                                  pending.extra_delay)

    def _make_prepare_watcher(self, record: DistributedTxRecord, shard_id: int):
        def on_receipt(receipt: TransactionReceipt) -> None:
            ok = receipt.status is TxStatus.COMMITTED
            if self._fault is not None and self._fault.drop_vote(record, shard_id, ok):
                return  # vote lost; the prepare-deadline re-drive recovers
            self._handle_prepare_outcome(record, shard_id, ok, receipt.error)
        return on_receipt

    def _handle_prepare_outcome(self, record: DistributedTxRecord, shard_id: int,
                                ok: bool, reason: Optional[str]) -> None:
        """A shard's prepare outcome is known: relay the vote (step 1b)."""
        if self.config.use_reference_committee:
            self._submit_vote(record, shard_id, ok, reason)
        else:
            before = record.outcome
            self._record_vote(record, shard_id, ok, reason)
            if record.outcome is not DistributedTxOutcome.PENDING and before is DistributedTxOutcome.PENDING:
                self._send_decision(record)

    def _record_vote(self, record: DistributedTxRecord, shard_id: int, ok: bool,
                     reason: Optional[str]) -> None:
        self.coordinator.record_prepare_vote(record.tx_id, shard_id, ok,
                                             now=self.runtime.now, reason=reason)
        if self._fault is not None:
            duplicates = self._fault.duplicate_votes(record, shard_id, ok)
            for index in range(duplicates):
                self.runtime.schedule(
                    self._fault.stale_delay() * (index + 1),
                    self._replay_vote, record.tx_id, shard_id, ok, reason)

    def _replay_vote(self, tx_id: str, shard_id: int, ok: bool,
                     reason: Optional[str]) -> None:
        """A stale duplicate vote arrives (idempotent-or-rejected at the coordinator)."""
        if self.coordinator.retain_records and tx_id not in self.coordinator.records:
            return
        self.coordinator.record_prepare_vote(tx_id, shard_id, ok,
                                             now=self.runtime.now, reason=reason)

    def _submit_vote(self, record: DistributedTxRecord, shard_id: int, ok: bool,
                     reason: Optional[str]) -> None:
        assert self.reference is not None
        chaincode = ReferenceCommitteeChaincode()
        vote = chaincode.new_transaction(
            "prepareOK" if ok else "prepareNotOK",
            {"tx_id": record.tx_id, "shard_id": shard_id},
            client_id=record.transaction.client_id,
        )

        def on_receipt(receipt: TransactionReceipt) -> None:
            before = record.outcome
            self._record_vote(record, shard_id, ok, reason)
            decided_state = None
            if receipt.result and isinstance(receipt.result, dict):
                decided_state = receipt.result.get("state")
            decided = record.outcome is not DistributedTxOutcome.PENDING
            if decided and before is DistributedTxOutcome.PENDING:
                # Sanity: the replicated state machine must agree with the
                # local bookkeeping (both implement Figure 6).
                if decided_state == CoordinatorState.ABORTED.value:
                    assert record.outcome is DistributedTxOutcome.ABORTED
                self._send_decision(record)

        self._watch(vote, on_receipt)
        attempt = record.redrives
        self._relay(lambda: self.reference.submit([vote], attempt=attempt))

    def _send_decision(self, record: DistributedTxRecord,
                       only_shards: Optional[List[int]] = None) -> None:
        if self.coordinator.crashed:
            return  # recovery re-drives decided-but-unsent decisions
        if (self._fault is not None
                and self._fault.crash_coordinator(record, "decide")):
            self._crash_coordinator()
            return  # decided but unsent: re-driven at recovery
        committed = record.outcome is DistributedTxOutcome.COMMITTED
        if committed:
            per_shard = self.splitter.commit_transactions(record.transaction, self.shard_of_key)
        else:
            per_shard = self.splitter.abort_transactions(record.transaction, self.shard_of_key)
        if only_shards is not None:
            per_shard = {shard: tx for shard, tx in per_shard.items()
                         if shard in only_shards}
        cohorts: Dict[float, List[Tuple[int, Transaction]]] = {}
        sent = self._decisions_sent.setdefault(record.tx_id, set())
        for shard_id, decision_tx in per_shard.items():
            self._watch(decision_tx, self._make_decision_watcher(record, shard_id))
            sent.add(shard_id)
            extra_delay = (self._fault.decision_delay(record, shard_id)
                           if self._fault is not None else 0.0)
            cohorts.setdefault(extra_delay, []).append((shard_id, decision_tx))
        for extra_delay in sorted(cohorts):
            self._relay_cohort(cohorts[extra_delay], extra_delay,
                               attempt=record.redrives)
        if self.adversary is not None and self.config.prepare_timeout is not None:
            # Under an armed adversary a decision's first-contact member may
            # swallow it (a silent Byzantine replica), leaving the record
            # decided-but-unacked forever; the deadline re-drives it through
            # a rotated member.  Honest runs never lose decisions, so the
            # timer is not armed there and the default event flow is
            # untouched.
            self.runtime.schedule(self.config.prepare_timeout,
                              self._check_decision_deadline, record.tx_id)

    def _make_decision_watcher(self, record: DistributedTxRecord, shard_id: int):
        def on_receipt(receipt: TransactionReceipt) -> None:
            self.coordinator.record_commit_ack(record.tx_id, shard_id, now=self.runtime.now)
            if self.admission is not None:
                self.admission.release_shard(record.tx_id, shard_id)
            if self._fault is not None:
                duplicates = self._fault.duplicate_acks(record, shard_id)
                for index in range(duplicates):
                    self.runtime.schedule(self._fault.stale_delay() * (index + 1),
                                      self._replay_ack, record.tx_id, shard_id)
            if record.all_acks_in:
                self._finish(record)
        return on_receipt

    def _replay_ack(self, tx_id: str, shard_id: int) -> None:
        """A stale duplicate commit ack arrives (a counted no-op)."""
        if self.coordinator.retain_records and tx_id not in self.coordinator.records:
            return
        self.coordinator.record_commit_ack(tx_id, shard_id, now=self.runtime.now)

    # ------------------------------------------------- re-drives and recovery
    def _check_decision_deadline(self, tx_id: str) -> None:
        """Re-drive a decided transaction whose commit/abort acks never came.

        Only armed on adversarial runs (see :meth:`_send_decision`).  Shards
        whose ack is still missing get the decision again via a rotated
        member; re-delivery is safe because the decision chaincodes are
        idempotent (Smallbank applies deltas only while the prepare lock is
        held, KVStore writes are absolute).
        """
        record = self.coordinator.records.get(tx_id)
        if (record is None or record.phase is DistributedTxPhase.DONE
                or record.outcome is DistributedTxOutcome.PENDING):
            return
        if self.coordinator.crashed:
            # Recovery re-drives unsent decisions; check again afterwards.
            self.runtime.schedule(self.config.prepare_timeout,
                              self._check_decision_deadline, tx_id)
            return
        missing = [shard for shard in record.shards
                   if shard not in record.commit_acks]
        if missing:
            self.coordinator.mark_redriven(record)
            self._send_decision(record, only_shards=missing)

    def _check_prepare_deadline(self, tx_id: str) -> None:
        """The prepare deadline passed: re-drive the shards with missing votes."""
        record = self.coordinator.records.get(tx_id)
        if (record is None or record.outcome is not DistributedTxOutcome.PENDING
                or record.phase is DistributedTxPhase.DONE):
            return
        if self.coordinator.crashed:
            # Recovery will re-drive; check again afterwards.
            self.runtime.schedule(self.config.prepare_timeout,
                              self._check_prepare_deadline, tx_id)
            return
        if record.prepare_deadline is None or record.prepare_deadline > self.runtime.now:
            delay = (record.prepare_deadline - self.runtime.now
                     if record.prepare_deadline is not None
                     else self.config.prepare_timeout)
            self.runtime.schedule(max(delay, 1e-9), self._check_prepare_deadline, tx_id)
            return
        missing = [shard for shard in record.shards
                   if shard not in record.prepare_votes]
        waiting = {pending_key[1] for pending_key in
                   (self.admission._pending if self.admission is not None else {})
                   if pending_key[0] == tx_id}
        to_redrive = [shard for shard in missing if shard not in waiting]
        if to_redrive:
            self.coordinator.mark_redriven(record)
            record.prepare_deadline = self.runtime.now + self.config.prepare_timeout
            self._send_prepares(record, only_shards=to_redrive)
        else:
            record.prepare_deadline = self.runtime.now + self.config.prepare_timeout
            self.runtime.schedule(self.config.prepare_timeout,
                              self._check_prepare_deadline, tx_id)

    def _wound(self, victim_tx_id: str) -> None:
        """Wound-wait: an older transaction aborts the younger lock holder."""
        record = self.coordinator.records.get(victim_tx_id)
        if record is None or record.outcome is not DistributedTxOutcome.PENDING:
            return
        # Abort through the normal vote path.  Prefer a participant shard
        # that has not voted yet (an undecided record always has one) so the
        # wound is a first vote, not a conflicting revote; the shard's own
        # later OK vote is then rejected as stale.
        shard_id = next((shard for shard in record.shards
                         if shard not in record.prepare_votes),
                        record.shards[0])
        self._handle_prepare_outcome(record, shard_id, False,
                                     reason="wounded by an older transaction")

    def _crash_coordinator(self) -> None:
        """The coordinator fails; recovery is scheduled per the fault scenario."""
        if self.coordinator.crashed:
            return  # one recovery is already scheduled
        self.coordinator.crash()
        delay = self._fault.recovery_delay() if self._fault is not None else 1.0
        self.runtime.schedule(delay, self._recover_coordinator)

    def _recover_coordinator(self) -> None:
        """Replay buffered votes/acks, then re-drive unfinished transactions."""
        if not self.coordinator.crashed:
            return
        report = self.coordinator.recover(now=self.runtime.now)
        for record in report.completed:
            self._finish(record)
        for record in report.restart:
            self.coordinator.mark_redriven(record)
            if (record.phase is DistributedTxPhase.BEGINNING
                    and self.config.use_reference_committee):
                self._submit_begin_tx(record)
                continue
            missing = [shard for shard in record.shards
                       if shard not in record.prepare_votes]
            self._send_prepares(record, only_shards=missing or list(record.shards))
        for record in report.redrive:
            sent = self._decisions_sent.get(record.tx_id, set())
            unsent = [shard for shard in record.shards
                      if shard not in record.commit_acks and shard not in sent]
            if unsent:
                self.coordinator.mark_redriven(record)
                self._send_decision(record, only_shards=unsent)

    # ------------------------------------------------------------- completion
    def _finish(self, record: DistributedTxRecord) -> None:
        if self.admission is not None:
            self.admission.finish(record.tx_id)
        self._decisions_sent.pop(record.tx_id, None)
        callback = self._completion_callbacks.pop(record.tx_id, None)
        if callback is not None:
            callback(record)

    def _watch(self, tx: Transaction, callback: Callable[[TransactionReceipt], None]) -> None:
        self._receipt_watchers[tx.tx_id] = callback

    def _relay(self, action: Callable[[], None]) -> None:
        """Submit after the configured client-relay delay."""
        self.runtime.schedule(self.config.relay_delay, action)

    # ------------------------------------------------------------------- run
    def advance(self, until: float, max_events: Optional[int] = None) -> None:
        """Advance the deployment to simulated time ``until``.

        The engine-neutral way to drive a system: drivers and the auditor go
        through this instead of touching ``sim.run_batched`` directly, so the
        scale-out engine can substitute its barrier loop.
        """
        self.sim.run_batched(until=until, max_events=max_events)

    def pending_activity(self) -> bool:
        """Whether any engine component still has events queued."""
        return self.sim.pending_events > 0

    def close(self) -> None:
        """Release engine resources (worker processes); idempotent no-op here."""

    def run(self, duration: float, max_events: Optional[int] = None) -> ShardedRunResult:
        """Advance the simulation and summarise the coordinator statistics.

        Uses the batched drain loop (:meth:`Simulator.run_batched`), which is
        observationally equivalent to the one-at-a-time loop but cheaper on
        message-heavy runs.
        """
        self.advance(self.runtime.now + duration, max_events=max_events)
        return self.result(duration)

    def coordination_stats(self):
        """Aggregate 2PC coordination statistics (engine-neutral).

        The legacy engine has exactly one coordinator; the scale-out engine
        overrides this to merge the per-partition home coordinators' stats.
        """
        return self.coordinator.stats

    def result(self, duration: float) -> ShardedRunResult:
        stats = self.coordination_stats()
        committed = stats.committed
        aborted = stats.aborted
        per_shard = {
            shard_id: cluster.honest_observer().committed_transactions()
            for shard_id, cluster in self.shards.items()
        }
        reference_txs = (self.reference.honest_observer().committed_transactions()
                         if self.reference is not None else 0)
        return ShardedRunResult(
            duration=duration,
            committed_transactions=committed,
            aborted_transactions=aborted,
            throughput_tps=committed / duration if duration > 0 else 0.0,
            abort_rate=stats.abort_rate,
            mean_latency=stats.mean_latency,
            cross_shard_fraction=(stats.cross_shard / stats.started if stats.started else 0.0),
            per_shard_committed=per_shard,
            reference_committee_transactions=reference_txs,
            current_epoch=self.epochs.current_epoch,
            reconfigurations_completed=self.reconfigurations_completed,
        )

    def shard_summaries(self) -> Dict[int, Dict[str, int]]:
        """Per-shard observable outcomes (engine-neutral)."""
        summaries: Dict[int, Dict[str, int]] = {}
        for shard_id, cluster in self.shards.items():
            summaries[shard_id] = {
                "committed": cluster.honest_observer().committed_transactions(),
                "view_changes": int(cluster.monitor.counter_value(
                    f"view_changes.shard{shard_id}")),
            }
        return summaries

    def fingerprint(self) -> Dict[str, object]:
        """Exact observable outcome of the run so far.

        Commit/abort totals plus per-shard committed counts and view-change
        counts — all integers, so "equal fingerprints" means bit-identical
        outcomes.  The scale-out engine guarantees this value is invariant
        under the worker count and the barrier interval for a given
        seed+config.
        """
        stats = self.coordination_stats()
        summaries = self.shard_summaries()
        return {
            "committed": stats.committed,
            "aborted": stats.aborted,
            "started": stats.started,
            "per_shard_committed": {shard_id: summaries[shard_id]["committed"]
                                    for shard_id in sorted(summaries)},
            "view_changes": {shard_id: summaries[shard_id]["view_changes"]
                             for shard_id in sorted(summaries)},
        }

    def audit_clusters(self) -> Dict[int, ConsensusCluster]:
        """The real shard clusters, for the auditor to attach observers to.

        The scale-out engine overrides this to expose its inline partitions'
        clusters (and to reject process-mode audits, where the replicas live
        in other address spaces).
        """
        return dict(self.shards)

    # --------------------------------------------------------------- analytics
    def enable_analytics(self, account_history: bool = True) -> LedgerIndex:
        """Attach a commit-time :class:`LedgerIndex` to this deployment.

        Idempotent — the first call builds the index and subscribes it to
        every committee's commits (through the same engine-neutral
        :meth:`audit_clusters` path the auditor uses, so it works on both
        the legacy engine and the scale-out engine's inline partitions);
        later calls return the same index.  Each shard is registered at its
        chain height at attach time, so an index enabled before the run
        (the normal case) sees every block from height 1.

        The index is a pure observer: enabling it never schedules events,
        so an indexed run commits exactly the same blocks as a bare one.
        """
        if self.analytics is not None:
            return self.analytics
        index = LedgerIndex(account_history=account_history)
        clusters = dict(self.audit_clusters())
        if self.reference is not None:
            clusters[REFERENCE_SHARD_ID] = self.reference
        for shard_id, cluster in clusters.items():
            chain = cluster.honest_observer().blockchain
            index.register_shard(shard_id, origin_height=chain.height,
                                 origin_hash=chain.tip.block_hash)
            cluster.subscribe_commits(
                self._make_index_observer(index, shard_id, cluster))
        for stats in self.epoch_transitions:
            if stats.completed_at is not None:
                index.record_epoch_transition(stats.epoch, stats.strategy,
                                              stats.min_active_margin)
        self.analytics = index
        return index

    def _make_index_observer(self, index: LedgerIndex, shard_id: int,
                             cluster: ConsensusCluster) -> Callable[[CommitEvent], None]:
        def on_commit(event: CommitEvent) -> None:
            # After membership changes the committee fans commits out from
            # *every* member, including Byzantine ones (whose local chains
            # are allowed to be garbage) and reports the same height many
            # times; ingest only honest reports and let the index's
            # first-writer-per-height dedup absorb the duplicates.
            try:
                replica = cluster.replica_by_id(event.replica_id)
            except ConfigurationError:
                return  # a departed member's late report
            if replica.byzantine is not None:
                return
            epoch = self.epochs.epoch_of(event.block.header.timestamp)
            index.ingest_block(shard_id, event.block, event.receipts, epoch=epoch)
        return on_commit

    # ------------------------------------------------- epochs/reconfiguration
    @property
    def current_epoch(self) -> int:
        """The epoch the deployment is currently in."""
        return self.epochs.current_epoch

    def perform_reconfiguration(self, strategy: str, at_time: float,
                                state_transfer_seconds: Optional[float] = None,
                                batch_size: Optional[int] = None,
                                batch_interval: Optional[float] = None) -> None:
        """Schedule an explicit epoch transition at ``at_time`` (Figure 12).

        At that moment the full epoch lifecycle runs: beacon randomness,
        committee re-assignment, and the executed migration plan — real
        membership changes, not in-place pauses.  ``swap-all`` moves every
        transitioning node at once (the naive approach; committees lose
        their quorum for the transfer window); ``swap-batch`` moves at most
        ``B`` nodes per committee per batch, spaced at least
        ``batch_interval`` apart, so each committee keeps a quorum and the
        system stays available.

        ``state_transfer_seconds`` overrides the per-node transfer delay;
        by default it is derived from the destination shard's actual state
        size via :func:`repro.sharding.reconfiguration.state_transfer_seconds`
        under ``config.state_bandwidth_bps``.
        """
        if strategy not in RECONFIGURATION_STRATEGIES:
            raise ConfigurationError(f"unknown reconfiguration strategy {strategy!r}")
        if at_time < self.runtime.now:
            raise ConfigurationError(
                f"cannot reconfigure at {at_time!r}: it is in the past "
                f"(simulated time is {self.runtime.now!r})")
        if batch_interval is None:
            batch_interval = self.config.swap_batch_interval
        for cluster in self.shards.values():
            cluster.enable_request_tracking()
        self.runtime.schedule_at(at_time, self._begin_transition_attempt, strategy,
                             state_transfer_seconds, batch_size, batch_interval)

    def _begin_transition_attempt(self, strategy: str,
                                  transfer_override: Optional[float],
                                  batch_size: Optional[int],
                                  batch_interval: float) -> None:
        """Start the requested transition, deferring while one is running."""
        if self._active_transition is not None:
            self.runtime.schedule(1.0, self._begin_transition_attempt, strategy,
                              transfer_override, batch_size, batch_interval)
            return
        self._start_epoch_transition(strategy, transfer_override, batch_size,
                                     batch_interval)

    def _epoch_tick(self) -> None:
        """The automatic epoch clock (scheduled only under ``auto_reconfigure``)."""
        if self._active_transition is not None:
            self.epoch_boundaries_skipped += 1
        elif self.epochs.next_epoch_due(self.runtime.now):
            self._start_epoch_transition(self.config.reconfiguration_strategy,
                                         None, None,
                                         self.config.swap_batch_interval)
        self.runtime.schedule(self.config.epoch_duration, self._epoch_tick)

    def _start_epoch_transition(self, strategy: str,
                                transfer_override: Optional[float],
                                batch_size: Optional[int],
                                batch_interval: float) -> None:
        """Run the epoch lifecycle: randomness -> assignment -> migration."""
        epoch = self.epochs.current_epoch + 1
        beacon = derive_epoch_randomness(self.config.total_nodes, epoch,
                                         seed=self.config.seed)
        rnd = beacon.rnd if beacon.succeeded else self.config.seed * 1_000_003 + epoch
        new_assignment = assign_committees(sorted(self._replica_of),
                                           self.config.num_shards,
                                           seed=rnd, epoch=epoch)
        plan = plan_reconfiguration(self.assignment, new_assignment,
                                    strategy=strategy, batch_size=batch_size)
        if strategy == "swap-batch" and not plan.preserves_liveness():
            clamp = max(1, min(committee.fault_tolerance()
                               for committee in self.assignment.committees))
            if clamp < plan.batch_size:
                warnings.warn(
                    f"swap-batch size {plan.batch_size} would cost some committee "
                    f"its quorum; clamped to {clamp}", RuntimeWarning, stacklevel=2)
                plan = plan_reconfiguration(self.assignment, new_assignment,
                                            strategy=strategy, batch_size=clamp)
        if not plan.preserves_liveness():
            warnings.warn(
                f"epoch {epoch} {strategy} plan does not preserve liveness: some "
                "committee loses its quorum during the transition",
                RuntimeWarning, stacklevel=2)
        stats = EpochTransitionStats(
            epoch=epoch, strategy=strategy, started_at=self.runtime.now,
            randomness=beacon.rnd, beacon_rounds=beacon.rounds,
            beacon_seconds=beacon.elapsed_seconds,
            nodes_to_move=len(plan.transitioning_nodes), plan=plan,
        )
        self.epoch_transitions.append(stats)
        self.epochs.start_epoch(new_assignment, now=self.runtime.now)
        self.assignment = new_assignment
        transition = _ActiveTransition(
            plan=plan, stats=stats, transfer_override=transfer_override,
            batch_interval=batch_interval,
            old_map=plan.old_assignment.membership_map(),
            new_map=new_assignment.membership_map(),
        )
        self._active_transition = transition
        for cluster in self.shards.values():
            cluster.prepare_for_membership_change()
        # Randomness generation is part of the transition window: the first
        # swap batch starts once the beacon's rnd is locked in.
        self.runtime.schedule(beacon.elapsed_seconds, self._run_migration_step,
                          transition, 0)

    def _run_migration_step(self, transition: _ActiveTransition, index: int) -> None:
        """Execute one swap batch; reschedules itself until the plan is done."""
        plan = transition.plan
        if index >= plan.num_steps:
            self._complete_transition(transition)
            return
        max_transfer = 0.0
        for logical in sorted(plan.nodes_in_step(index)):
            max_transfer = max(max_transfer, self._migrate_node(transition, logical))
            transition.stats.nodes_moved += 1
        self._record_membership_margins(transition.stats)
        # The next batch never starts before this batch's transfers finish,
        # so concurrent absences stay bounded by the batch size.
        delay = (max(transition.batch_interval, max_transfer)
                 if index + 1 < plan.num_steps else max_transfer)
        self.runtime.schedule(delay, self._run_migration_step, transition, index + 1)

    def _migrate_node(self, transition: _ActiveTransition, logical: int) -> float:
        """One node leaves its old committee and joins its new one.

        Returns the modelled state-transfer delay after which the new member
        activates (starts serving in the destination committee).
        """
        old_shard = transition.old_map[logical]
        new_shard = transition.new_map[logical]
        source_cluster = self.shards[old_shard]
        dest_cluster = self.shards[new_shard]
        transfer = transition.transfer_override
        if transfer is None:
            transfer = state_transfer_seconds(
                self._shard_state_bytes(dest_cluster),
                bandwidth_bps=self.config.state_bandwidth_bps)
        if self.adversary is not None:
            # Corruption follows the logical node: the strategy must know the
            # joiner's id before admit_member constructs the replica.
            self.adversary.on_migrate(logical, self._replica_of[logical],
                                      source_cluster, dest_cluster)
        source_cluster.remove_member(self._replica_of[logical])
        new_physical = dest_cluster.admit_member()
        self._replica_of[logical] = new_physical
        self.runtime.schedule(transfer, dest_cluster.activate_member, new_physical)
        return transfer

    @staticmethod
    def _shard_state_bytes(cluster: ConsensusCluster) -> int:
        """The destination shard's state size, as a joining node would fetch it.

        Sized from the same member the joiner will install from (including
        the escrowed state of a fully-replaced committee), so a swap-all
        replacement never sees an empty fresh joiner and concludes the
        transfer is free.
        """
        source = cluster.state_source_replica()
        return source.state.size_bytes() if source is not None else 0

    def _record_membership_margins(self, stats: EpochTransitionStats) -> None:
        """Sample each committee's active-members-minus-quorum margin."""
        for shard_id, cluster in self.shards.items():
            if not cluster.replicas:
                continue
            margin = (len(cluster.active_replicas())
                      - cluster.config.quorum_size(len(cluster.replicas)))
            previous = stats.min_active_margin.get(shard_id)
            if previous is None or margin < previous:
                stats.min_active_margin[shard_id] = margin

    def _complete_transition(self, transition: _ActiveTransition) -> None:
        self.epochs.complete_transition(self.runtime.now)
        transition.stats.completed_at = self.runtime.now
        self.reconfigurations_completed += 1
        self._active_transition = None
        if self.analytics is not None:
            # The single wiring point (shared with the scale-out engine) that
            # materializes a finished transition's quorum margins.
            self.analytics.record_epoch_transition(
                transition.stats.epoch, transition.stats.strategy,
                transition.stats.min_active_margin)

    def throughput_over_time(self, bucket_seconds: float = 5.0) -> List[tuple]:
        """Committed-transaction rate over time, aggregated across shards."""
        commits: List[tuple] = []
        for record in self.coordinator.records.values():
            if record.outcome is DistributedTxOutcome.COMMITTED and record.completed_at is not None:
                commits.append((record.completed_at, 1.0))
        from repro.sim.monitor import TimeSeries
        series = TimeSeries.from_samples("commits", commits)
        return series.bucketed_rate(bucket_seconds, until=self.runtime.now)
