"""Deterministic multi-core scale-out engine for the sharded system.

The legacy :class:`~repro.core.system.ShardedBlockchain` drains every
committee's events on one global simulation loop, so wall-clock time grows
with the *total* work of all shards.  This module partitions the deployment
— the paper's own structure makes the cut: committees only interact through
the coordination layer, never directly — so shard-side consensus work can
run on multiple cores while outcomes stay bit-identical for any worker
count.

Execution model (conservative synchronous PDES)
-----------------------------------------------
* Each shard committee becomes a :class:`ShardPartition`: its own
  :class:`~repro.sim.simulator.Simulator`, :class:`~repro.sim.network.Network`
  (and therefore its own jitter RNG stream), replicas, and chaincode state.
* The parent keeps everything else: the 2PC coordinator, the reference
  committee, lock admission, fault injection, the epoch machinery and the
  drivers.
* Every parent->shard interaction pays at least ``config.relay_delay``
  before the shard acts, and every shard->parent interaction (commit
  receipts, migration reports) is timestamped with its exact occurrence
  time.  ``relay_delay`` is therefore a *lookahead*: within any window of
  length ``barrier_interval <= relay_delay``, neither side can affect the
  other's present, so windows can be executed independently.

The barrier loop alternates strictly: partitions drain window ``(T, T+d]``
first (commands buffered by the parent's previous window injected at their
exact due times, in emission order), then their outputs are injected into
the parent sorted by ``(time, shard, emission sequence)``, then the parent
drains the same window — emitting the next round of commands.  Commands and
outputs always carry exact event times, never barrier-aligned ones, which
is why the fingerprint is invariant under both the barrier length and the
worker count.

Workers
-------
``workers=1`` drains all partitions inline in one process (the
seed-faithful scale-out path, also the only mode the
:class:`~repro.audit.auditor.SafetyAuditor` can attach to — it needs the
replicas in its own address space).  ``workers=N`` forks N persistent
worker processes, each owning a fixed subset of partitions
(``shard % N == worker``), and exchanges pickled command/output batches
over pipes once per barrier.  Because partitions are self-contained, the
grouping of partitions onto workers cannot affect outcomes — which is the
whole determinism argument: ``workers=N`` executes exactly the same
per-partition event sequences as ``workers=1``.

Epoch transitions and the adversary cross partition boundaries, so they are
decomposed into partition-local control operations: membership removal runs
on the source partition, admission (including the budget-checked corruption
decision, the state-transfer sizing and the activation timer) on the
destination partition, with reports flowing back to the parent to pace the
next swap batch.  The TEE rollback is armed directly on the partition that
owns the victim shard, at its absolute configured times.

Known tie-break caveat: an output injected at time ``t`` fires after parent
events at ``t`` scheduled in earlier windows and before ones scheduled
later in the same window.  In principle a parent event at exactly ``t``
whose *scheduling* window straddles a barrier could order differently under
a different ``barrier_interval``; in practice partition output times are
sums of jittered network latencies and never collide with unrelated parent
event times (the barrier-sweep property test verifies outcome invariance
empirically).
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.consensus.cluster import ConsensusCluster, member_node_id
from repro.core.adversary import AdversaryState
from repro.core.config import ShardedSystemConfig
from repro.core.system import REFERENCE_SHARD_ID, ShardedBlockchain, ShardedRunResult
from repro.errors import ConfigurationError, SimulationError
from repro.ledger.chaincode import ChaincodeRegistry
from repro.ledger.transaction import Transaction
from repro.sharding.assignment import assign_committees
from repro.sharding.reconfiguration import state_transfer_seconds
from repro.sim.latency import LanLatencyModel
from repro.sim.network import Network
from repro.sim.simulator import Simulator
from repro.workloads.kvstore import KVStoreWorkload
from repro.workloads.smallbank import SmallbankWorkload


def build_system(config: ShardedSystemConfig) -> ShardedBlockchain:
    """Build the engine the config asks for.

    ``workers=None`` — the default — returns the legacy single-simulation
    engine (bit-identical to every committed baseline); an integer returns
    the partitioned scale-out engine.
    """
    if config.workers is None:
        return ShardedBlockchain(config)
    return ScaleOutShardedBlockchain(config)


def _partition_seed(seed: int, shard_id: int) -> int:
    """Seed of a shard partition's own simulator (distinct per shard)."""
    return seed * 1_000_003 + 7_919 * shard_id + 17


# --------------------------------------------------------------------------
# Cross-boundary messages.  Everything here is a plain picklable dataclass:
# process mode ships these over pipes, inline mode passes them in memory —
# same objects, same ordering rules, same outcomes.
# --------------------------------------------------------------------------

@dataclass
class _Command:
    """One parent->partition control operation, due at an exact time."""

    due: float
    shard: int
    op: str  # "submit" | "remove" | "admit" | "margin" | "prepare" | "track"
    txs: Tuple[Transaction, ...] = ()
    attempt: int = 0
    #: remove: the physical id leaving.  admit: the joiner id the parent
    #: predicted from its slot mirror (cross-checked partition-side).
    node_id: int = -1
    logical: int = -1
    transfer_override: Optional[float] = None
    #: Correlates admit/margin reports with parent-side bookkeeping.
    marker: int = -1


@dataclass
class _ReceiptsOut:
    """Commit receipts observed on a partition at ``time``."""

    time: float
    shard: int
    seq: int
    receipts: Tuple[Any, ...]


@dataclass
class _AdmitReport:
    """A destination partition executed an admit op: its transfer delay."""

    time: float
    shard: int
    seq: int
    marker: int
    node_id: int
    transfer: float


@dataclass
class _MarginReport:
    """A partition sampled its committee's active-minus-quorum margin."""

    time: float
    shard: int
    seq: int
    marker: int
    margin: int


@dataclass
class _BatchState:
    """Parent bookkeeping for one in-flight swap batch."""

    transition: Any
    index: int
    started_at: float
    outstanding: int
    max_transfer: float = 0.0


class ShardPartition:
    """One shard's self-contained sub-simulation (runs wherever its worker is)."""

    def __init__(self, config: ShardedSystemConfig, shard_id: int) -> None:
        self.config = config
        self.shard_id = shard_id
        self.sim = Simulator(seed=_partition_seed(config.seed, shard_id))
        self.network = Network(self.sim, config.latency_model or LanLatencyModel())
        # The committee assignment and the adversary placement are pure
        # functions of the config, so every partition recomputes them and
        # agrees with the parent without any state shipping.
        assignment = assign_committees(list(range(config.total_nodes)),
                                       config.num_shards, seed=config.seed)
        self.adversary: Optional[AdversaryState] = (
            AdversaryState.place(config, assignment)
            if config.adversary is not None else None)
        self.cluster = ConsensusCluster(
            protocol=config.protocol,
            n=config.committee_size,
            config_overrides=dict(config.consensus_overrides),
            registry_factory=self._benchmark_registry,
            regions=config.regions,
            byzantine=(self.adversary.strategy_for(shard_id)
                       if self.adversary is not None else None),
            seed=config.seed + shard_id,
            shard_id=shard_id,
            sim=self.sim,
            network=self.network,
            max_series_samples=config.max_series_samples,
        )
        self._populate()
        self._outbox: List[Any] = []
        self._outseq = itertools.count()
        self.cluster.subscribe_commits(self._on_commit)
        if (self.adversary is not None
                and self.adversary.config.tee_rollback_shard == shard_id):
            self.adversary.arm_cluster(self.sim, self.cluster)

    # ------------------------------------------------------------ construction
    def _benchmark_registry(self) -> ChaincodeRegistry:
        registry = ChaincodeRegistry()
        if self.config.benchmark == "smallbank":
            registry.register(
                SmallbankWorkload(num_accounts=self.config.num_keys).chaincode)
        else:
            registry.register(
                KVStoreWorkload(num_keys=self.config.num_keys).chaincode)
        return registry

    def _populate(self) -> None:
        """Load this shard's slice of the initial key space (parent mirror)."""
        from repro.workloads.generator import shard_of_key
        from repro.workloads.smallbank import initial_balances

        if self.config.benchmark == "smallbank":
            items = list(initial_balances(self.config.num_keys).items())
        else:
            workload = KVStoreWorkload(num_keys=self.config.num_keys)
            items = [(workload.key_name(i), "0" * 8)
                     for i in range(min(self.config.num_keys, 5000))]
        for key, value in items:
            if shard_of_key(key, self.config.num_shards) != self.shard_id:
                continue
            for replica in self.cluster.replicas:
                replica.state.put(key, value)

    # --------------------------------------------------------------- capture
    def _on_commit(self, event: Any) -> None:
        if event.receipts:
            self._outbox.append(_ReceiptsOut(
                time=self.sim.now, shard=self.shard_id,
                seq=next(self._outseq), receipts=tuple(event.receipts)))

    # --------------------------------------------------------------- running
    def inject(self, commands: List[_Command]) -> None:
        """Schedule buffered parent commands at their exact due times.

        Injection order (the parent's emission order) is the tie-break among
        same-time commands, so the apply order is worker-count-invariant.
        """
        for command in commands:
            self.sim.schedule_at(command.due, self._apply, command)

    def run_window(self, until: float) -> List[Any]:
        """Drain events up to ``until`` and return this window's outputs."""
        self.sim.run_batched(until=until)
        self.sim.advance_clock(until)
        out, self._outbox = self._outbox, []
        return out

    def _apply(self, command: _Command) -> None:
        op = command.op
        if op == "submit":
            self.cluster.submit(list(command.txs), attempt=command.attempt)
        elif op == "remove":
            if self.adversary is not None:
                self.adversary.retire_physical(self.cluster, command.node_id)
            self.cluster.remove_member(command.node_id)
        elif op == "admit":
            self._apply_admit(command)
        elif op == "margin":
            if self.cluster.replicas:
                margin = (len(self.cluster.active_replicas())
                          - self.cluster.config.quorum_size(len(self.cluster.replicas)))
                self._outbox.append(_MarginReport(
                    time=self.sim.now, shard=self.shard_id,
                    seq=next(self._outseq), marker=command.marker, margin=margin))
        elif op == "prepare":
            self.cluster.prepare_for_membership_change()
        elif op == "track":
            self.cluster.enable_request_tracking()
        else:  # pragma: no cover - protocol bug guard
            raise SimulationError(f"unknown partition op {op!r}")

    def _apply_admit(self, command: _Command) -> None:
        """Admit a migrating joiner: corruption decision, sizing, activation.

        Mirrors the legacy ``_migrate_node`` destination half exactly: the
        corruption decision precedes ``admit_member`` (replicas snapshot
        their strategy at construction), the transfer is sized from this
        cluster's own state source, and activation is a local timer.
        """
        if self.adversary is not None:
            self.adversary.corrupt_joiner_if_budget(command.logical, self.cluster)
        node_id = self.cluster.admit_member()
        if node_id != command.node_id:
            raise SimulationError(
                f"scale-out desync: shard {self.shard_id} admitted {node_id}, "
                f"parent predicted {command.node_id}")
        transfer = command.transfer_override
        if transfer is None:
            source = self.cluster.state_source_replica()
            state_bytes = source.state.size_bytes() if source is not None else 0
            transfer = state_transfer_seconds(
                state_bytes, bandwidth_bps=self.config.state_bandwidth_bps)
        self.sim.schedule(transfer, self.cluster.activate_member, node_id)
        self._outbox.append(_AdmitReport(
            time=self.sim.now, shard=self.shard_id, seq=next(self._outseq),
            marker=command.marker, node_id=node_id, transfer=transfer))

    # --------------------------------------------------------------- summary
    def summary(self) -> Dict[str, int]:
        counters = {
            "committed": self.cluster.honest_observer().committed_transactions(),
            "view_changes": int(self.cluster.monitor.counter_value(
                f"view_changes.shard{self.shard_id}")),
            "pending_events": self.sim.pending_events,
            "degraded_observer_reads": self.cluster.degraded_observer_reads,
        }
        if self.adversary is not None:
            counters["migrated_corruptions"] = self.adversary.migrated_corruptions
            counters["suppressed_corruptions"] = self.adversary.suppressed_corruptions
            counters["rollback_events"] = len(self.adversary.rollback_status())
            counters["rollbacks_completed"] = sum(
                1 for event in self.adversary.rollback_events if event.completed)
        return counters


# --------------------------------------------------------------------------
# Executors: run the fixed set of partitions, inline or across processes.
# --------------------------------------------------------------------------

class _InlineExecutor:
    """All partitions in this process, drained serially in shard order."""

    def __init__(self, config: ShardedSystemConfig, shard_ids: List[int]) -> None:
        self.partitions = {shard_id: ShardPartition(config, shard_id)
                           for shard_id in shard_ids}

    def run_window(self, until: float,
                   commands: List[_Command]) -> List[Any]:
        by_shard: Dict[int, List[_Command]] = {}
        for command in commands:
            by_shard.setdefault(command.shard, []).append(command)
        out: List[Any] = []
        for shard_id, partition in self.partitions.items():
            if shard_id in by_shard:
                partition.inject(by_shard[shard_id])
            out.extend(partition.run_window(until))
        return out

    def summaries(self) -> Dict[int, Dict[str, int]]:
        return {shard_id: partition.summary()
                for shard_id, partition in self.partitions.items()}

    def pending_events(self) -> int:
        return sum(partition.sim.pending_events
                   for partition in self.partitions.values())

    def close(self) -> None:
        pass


def _worker_main(conn: Any, config: ShardedSystemConfig,
                 shard_ids: List[int]) -> None:
    """Worker process loop: build the owned partitions, serve barrier RPCs."""
    partitions = {shard_id: ShardPartition(config, shard_id)
                  for shard_id in shard_ids}
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "window":
                _, until, by_shard = message
                out: List[Any] = []
                for shard_id in shard_ids:
                    partition = partitions[shard_id]
                    commands = by_shard.get(shard_id)
                    if commands:
                        partition.inject(commands)
                    out.extend(partition.run_window(until))
                conn.send(("done", out))
            elif kind == "summary":
                conn.send(("summary", {shard_id: partitions[shard_id].summary()
                                       for shard_id in shard_ids}))
            elif kind == "pending":
                conn.send(("pending", sum(p.sim.pending_events
                                          for p in partitions.values())))
            elif kind == "stop":
                conn.send(("bye",))
                return
    except EOFError:  # parent went away; nothing useful left to do
        return


class _ProcessExecutor:
    """Partitions spread over persistent worker processes (``shard % N``)."""

    def __init__(self, config: ShardedSystemConfig, shard_ids: List[int],
                 workers: int) -> None:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            ctx = multiprocessing.get_context()
        self._workers: List[Tuple[Any, Any, List[int]]] = []
        for worker_index in range(workers):
            owned = [shard_id for position, shard_id in enumerate(shard_ids)
                     if position % workers == worker_index]
            if not owned:
                continue
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(target=_worker_main,
                                  args=(child_conn, config, owned),
                                  daemon=True)
            process.start()
            child_conn.close()
            self._workers.append((process, parent_conn, owned))
        self._closed = False

    def _recv(self, conn: Any, expected: str) -> Any:
        try:
            reply = conn.recv()
        except EOFError as exc:
            raise SimulationError(
                "scale-out worker process died mid-run (see its stderr)") from exc
        if reply[0] != expected:  # pragma: no cover - protocol bug guard
            raise SimulationError(f"unexpected worker reply {reply[0]!r}")
        return reply[1] if len(reply) > 1 else None

    def run_window(self, until: float,
                   commands: List[_Command]) -> List[Any]:
        by_shard: Dict[int, List[_Command]] = {}
        for command in commands:
            by_shard.setdefault(command.shard, []).append(command)
        for _, conn, owned in self._workers:
            conn.send(("window", until,
                       {shard_id: by_shard[shard_id] for shard_id in owned
                        if shard_id in by_shard}))
        out: List[Any] = []
        for _, conn, _ in self._workers:
            out.extend(self._recv(conn, "done"))
        return out

    def summaries(self) -> Dict[int, Dict[str, int]]:
        for _, conn, _ in self._workers:
            conn.send(("summary",))
        merged: Dict[int, Dict[str, int]] = {}
        for _, conn, _ in self._workers:
            merged.update(self._recv(conn, "summary"))
        return merged

    def pending_events(self) -> int:
        for _, conn, _ in self._workers:
            conn.send(("pending",))
        return sum(self._recv(conn, "pending") for _, conn, _ in self._workers)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for process, conn, _ in self._workers:
            try:
                conn.send(("stop",))
                self._recv(conn, "bye")
            except (OSError, SimulationError):
                pass
            conn.close()
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck worker guard
                process.terminate()


# --------------------------------------------------------------------------
# The scale-out system.
# --------------------------------------------------------------------------

class ScaleOutShardedBlockchain(ShardedBlockchain):
    """The partitioned engine: same API, barrier-synchronized execution.

    See the module docstring for the model.  Construction reuses the base
    class with the shard-facing hooks overridden: shard "clusters" become
    :class:`_ShardHandle` stubs, state population / observer attachment /
    adversary arming move to the partitions, and every shard-bound relay is
    re-routed through the command buffer.
    """

    SUPPORTS_WORKERS = True

    def __init__(self, config: ShardedSystemConfig) -> None:
        if config.workers is None:
            raise ConfigurationError(
                "ScaleOutShardedBlockchain requires config.workers")
        # State the overridden construction hooks touch; must exist before
        # the base constructor runs them.
        self._cmd_buffer: List[_Command] = []
        self._marker_counter = itertools.count()
        self._pending_admits: Dict[int, _BatchState] = {}
        self._margin_sinks: Dict[int, Any] = {}
        self._executor: Optional[Any] = None
        self._next_slot: Dict[int, int] = {}
        super().__init__(config)
        self._next_slot = {shard_id: config.committee_size
                           for shard_id in range(config.num_shards)}
        self.barrier_interval = (config.barrier_interval
                                 if config.barrier_interval is not None
                                 else config.relay_delay)

    # -------------------------------------------------------------- executor
    @property
    def executor(self) -> Any:
        if self._executor is None:
            # Partitions never see the fault scenario (it binds parent-side
            # closures and is consulted only by the coordination layer) nor
            # the worker knobs themselves.
            spec = dataclasses.replace(self.config, fault_scenario=None,
                                       workers=None, barrier_interval=None)
            shard_ids = list(range(self.config.num_shards))
            if self.config.workers <= 1:
                self._executor = _InlineExecutor(spec, shard_ids)
            else:
                self._executor = _ProcessExecutor(spec, shard_ids,
                                                  self.config.workers)
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.close()

    # --------------------------------------------------- construction hooks
    def _build_shard_cluster(self, shard_id: int) -> Any:
        return _ShardHandle(self, shard_id)

    def _populate_states(self) -> None:
        pass  # each partition loads its own slice of the key space

    def _attach_observers(self) -> None:
        # Shard receipts arrive through the barrier exchange; only the
        # parent-resident reference committee keeps a direct observer.
        if self.reference is not None:
            self.reference.subscribe_commits(self._make_observer(REFERENCE_SHARD_ID))

    def _arm_adversary(self) -> None:
        pass  # the partition owning tee_rollback_shard arms its own copy

    def _initial_replica_map(self) -> Dict[int, int]:
        mapping: Dict[int, int] = {}
        for committee in self.assignment.committees:
            for slot, logical in enumerate(committee.members):
                mapping[logical] = member_node_id(committee.shard_id, slot)
        return mapping

    # ------------------------------------------------------------ relays
    def _emit(self, command: _Command) -> None:
        self._cmd_buffer.append(command)

    def _relay_shard_single(self, shard_id: int, tx: Transaction,
                            attempt: int = 0) -> None:
        self._emit(_Command(due=self.sim.now + self.config.relay_delay,
                            shard=shard_id, op="submit", txs=(tx,),
                            attempt=attempt))

    def _relay_cohort(self, group: List[Tuple[int, Transaction]],
                      extra_delay: float = 0.0, attempt: int = 0) -> None:
        due = self.sim.now + self.config.relay_delay + extra_delay
        for shard_id, tx in group:
            self._emit(_Command(due=due, shard=shard_id, op="submit",
                                txs=(tx,), attempt=attempt))

    # ------------------------------------------------------------ barrier loop
    def advance(self, until: float, max_events: Optional[int] = None) -> None:
        """Run the barrier loop to ``until`` (``max_events`` is not supported).

        Strict alternation per window: ship buffered commands, drain the
        partitions, inject their outputs at exact times, drain the parent.
        """
        delta = self.barrier_interval
        now = self.sim.now
        while now < until:
            end = min(now + delta, until)
            commands, self._cmd_buffer = self._cmd_buffer, []
            outputs = self.executor.run_window(end, commands)
            self._deliver_outputs(outputs)
            self.sim.run_batched(until=end)
            self.sim.advance_clock(end)
            now = end

    def pending_activity(self) -> bool:
        return (self.sim.pending_events > 0 or bool(self._cmd_buffer)
                or self.executor.pending_events() > 0)

    def _deliver_outputs(self, outputs: List[Any]) -> None:
        """Inject partition outputs as parent events at their exact times.

        The ``(time, shard, seq)`` sort is the canonical arrival order: it
        depends only on what the partitions did, never on how they were
        grouped onto workers.
        """
        for item in sorted(outputs, key=lambda it: (it.time, it.shard, it.seq)):
            if isinstance(item, _ReceiptsOut):
                self.sim.schedule_at(item.time, self._deliver_receipts,
                                     item.receipts)
            elif isinstance(item, _AdmitReport):
                self.sim.schedule_at(item.time, self._on_admit_report, item)
            elif isinstance(item, _MarginReport):
                self.sim.schedule_at(item.time, self._on_margin_report, item)
            else:  # pragma: no cover - protocol bug guard
                raise SimulationError(f"unknown partition output {item!r}")

    def _deliver_receipts(self, receipts: Tuple[Any, ...]) -> None:
        for receipt in receipts:
            watcher = self._receipt_watchers.pop(receipt.tx_id, None)
            if watcher is not None:
                watcher(receipt)

    # ------------------------------------------------------------ run/results
    def result(self, duration: float) -> ShardedRunResult:
        stats = self.coordinator.stats
        summaries = self.shard_summaries()
        per_shard = {shard_id: summaries[shard_id]["committed"]
                     for shard_id in sorted(summaries)}
        reference_txs = (self.reference.honest_observer().committed_transactions()
                         if self.reference is not None else 0)
        return ShardedRunResult(
            duration=duration,
            committed_transactions=stats.committed,
            aborted_transactions=stats.aborted,
            throughput_tps=stats.committed / duration if duration > 0 else 0.0,
            abort_rate=stats.abort_rate,
            mean_latency=stats.mean_latency,
            cross_shard_fraction=(stats.cross_shard / stats.started
                                  if stats.started else 0.0),
            per_shard_committed=per_shard,
            reference_committee_transactions=reference_txs,
            current_epoch=self.epochs.current_epoch,
            reconfigurations_completed=self.reconfigurations_completed,
        )

    def shard_summaries(self) -> Dict[int, Dict[str, int]]:
        return self.executor.summaries()

    def audit_clusters(self) -> Dict[int, ConsensusCluster]:
        if self.config.workers > 1:
            raise ConfigurationError(
                "the safety auditor needs the replicas in-process: audit a "
                "workers=1 run (bit-identical to workers=N by the engine's "
                "determinism guarantee) instead")
        return {shard_id: partition.cluster
                for shard_id, partition in self.executor.partitions.items()}

    # ------------------------------------------------------------ epoch ops
    def _run_migration_step(self, transition: Any, index: int) -> None:
        """Emit one swap batch as partition control ops; reports pace the next.

        Mirrors the legacy step exactly, shifted by the relay lookahead: ops
        execute on their partitions at ``t + relay_delay``, the destination
        sizes the transfer itself, and the next batch starts at
        ``max(t + batch_interval, t_ops + max_transfer)`` once every admit
        of this batch has reported — the same pacing rule as the legacy
        ``max(batch_interval, max_transfer)`` reschedule.
        """
        plan = transition.plan
        if index >= plan.num_steps:
            self._complete_transition(transition)
            return
        now = self.sim.now
        due = now + self.config.relay_delay
        markers: List[int] = []
        for logical in sorted(plan.nodes_in_step(index)):
            old_shard = transition.old_map[logical]
            new_shard = transition.new_map[logical]
            self._emit(_Command(due=due, shard=old_shard, op="remove",
                                node_id=self._replica_of[logical]))
            slot = self._next_slot[new_shard]
            self._next_slot[new_shard] = slot + 1
            new_physical = member_node_id(new_shard, slot)
            marker = next(self._marker_counter)
            markers.append(marker)
            self._emit(_Command(due=due, shard=new_shard, op="admit",
                                node_id=new_physical, logical=logical,
                                transfer_override=transition.transfer_override,
                                marker=marker))
            self._replica_of[logical] = new_physical
            transition.stats.nodes_moved += 1
        batch = _BatchState(transition=transition, index=index,
                            started_at=now, outstanding=len(markers))
        for marker in markers:
            self._pending_admits[marker] = batch
        # Margins are sampled on every shard after this batch's ops applied,
        # mirroring the legacy per-batch _record_membership_margins sweep.
        for shard_id in sorted(self.shards):
            marker = next(self._marker_counter)
            self._margin_sinks[marker] = transition.stats
            self._emit(_Command(due=due, shard=shard_id, op="margin",
                                marker=marker))
        if not markers:
            delay = transition.batch_interval if index + 1 < plan.num_steps else 0.0
            self.sim.schedule(delay, self._run_migration_step, transition,
                              index + 1)

    def _on_admit_report(self, report: _AdmitReport) -> None:
        batch = self._pending_admits.pop(report.marker)
        batch.outstanding -= 1
        batch.max_transfer = max(batch.max_transfer, report.transfer)
        if batch.outstanding:
            return
        transition = batch.transition
        if batch.index + 1 < transition.plan.num_steps:
            next_time = max(batch.started_at + transition.batch_interval,
                            self.sim.now + batch.max_transfer)
            self.sim.schedule_at(next_time, self._run_migration_step,
                                 transition, batch.index + 1)
        else:
            self.sim.schedule(batch.max_transfer, self._run_migration_step,
                              transition, batch.index + 1)

    def _on_margin_report(self, report: _MarginReport) -> None:
        stats = self._margin_sinks.pop(report.marker)
        previous = stats.min_active_margin.get(report.shard)
        if previous is None or report.margin < previous:
            stats.min_active_margin[report.shard] = report.margin


class _ShardHandle:
    """Parent-side stand-in for a partitioned shard's cluster.

    Implements exactly the cluster surface the parent's *control* paths use
    (request tracking and membership-change preparation become buffered
    commands); data-path calls must go through the overridden relays, so a
    direct ``submit`` is a protocol bug and says so.
    """

    def __init__(self, system: ScaleOutShardedBlockchain, shard_id: int) -> None:
        self.system = system
        self.shard_id = shard_id

    def submit(self, transactions: Any, to: Any = None, attempt: int = 0) -> None:
        raise SimulationError(
            f"direct submit to partitioned shard {self.shard_id}: shard-bound "
            "traffic must flow through the relay hooks (_relay_shard_single / "
            "_relay_cohort)")

    def enable_request_tracking(self) -> None:
        self.system._emit(_Command(
            due=self.system.sim.now + self.system.config.relay_delay,
            shard=self.shard_id, op="track"))

    def prepare_for_membership_change(self) -> None:
        self.system._emit(_Command(
            due=self.system.sim.now + self.system.config.relay_delay,
            shard=self.shard_id, op="prepare"))
