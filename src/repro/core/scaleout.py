"""Deterministic multi-core scale-out engine for the sharded system.

The legacy :class:`~repro.core.system.ShardedBlockchain` drains every
committee's events on one global simulation loop, so wall-clock time grows
with the *total* work of all shards.  This module partitions the deployment
— the paper's own structure makes the cut: committees only interact through
the coordination layer, never directly — so both the consensus work *and*
the coordination work run on multiple cores while outcomes stay
bit-identical for any worker count.

Two-tier architecture
---------------------
* Each shard committee becomes a :class:`ShardPartition`: its own
  :class:`~repro.sim.simulator.Simulator`, :class:`~repro.sim.network.Network`
  (and therefore its own jitter RNG stream), replicas, chaincode state —
  **and** its share of the coordination layer.  Every cross-shard
  transaction has a deterministic *home partition*
  (:func:`repro.core.homecoord.home_shard` — its first participating shard)
  whose :class:`~repro.core.homecoord.HomeCoordinator` runs the full 2PC
  state machine for it; every partition also plays the participant role
  (local lock admission, prepare/decision execution, voting) for other
  homes' transactions.  The reference committee is partition
  ``REFERENCE_SHARD_ID``, scheduled like any shard.
* Workload generation is in-partition too: each partition draws its own
  stream from a ``(seed, shard_id)`` split and keeps exactly the draws
  whose first key it owns, so the arrival process never touches the parent.
* The parent is a thin barrier orchestrator: it merges window outputs,
  runs the epoch/adversary control machinery, forwards API-submitted
  transactions to their homes, and gives the auditor access.  Its share of
  each window (``coordinator_work_share``) is a small fraction of the
  window time instead of a serial coordination bottleneck.

Execution model (conservative synchronous PDES)
-----------------------------------------------
Every cross-partition interaction — votes, decisions, re-drives, client
handoffs, reference receipts, parent control — pays at least
``config.relay_delay`` before the destination acts.  ``relay_delay`` is
therefore a *lookahead*: within any window of length ``barrier_interval <=
relay_delay``, no partition can affect another's present, so windows can be
executed independently.  The barrier loop alternates strictly: partitions
drain window ``(T, T+d]`` first (all inbound cross-partition commands
injected at the window start, sorted by the canonical ``(due, src, seq)``
order), then their parent-facing outputs are injected into the parent
sorted by ``(time, shard, seq)``, then the parent drains the same window.
Commands between partitions are exchanged as one batched
:class:`~repro.core.homecoord.WindowBlock` /
:class:`~repro.core.homecoord.WindowResult` pickle per worker per window —
commands held by a worker for its own partitions never leave the process,
but they are *also* only injected at the next window start, so grouping
cannot change injection timing.

Workers
-------
``workers=1`` drains all partitions inline in one process (the only mode
the :class:`~repro.audit.auditor.SafetyAuditor` can attach to — it needs
the replicas in its own address space).  ``workers=N`` forks N persistent
worker processes, each owning a fixed partition subset chosen by
:func:`~repro.core.homecoord.assign_partitions` (deterministic load-aware
LPT by default, ``position % N`` under ``worker_assignment="modulo"``).
Because partitions are self-contained and all cross-partition effects are
window-batched, the grouping cannot affect outcomes: ``workers=N`` executes
exactly the same per-partition event sequences as ``workers=1``.  Each
partition additionally owns a disjoint transaction-id stream swapped into
the process-global counter around its windows, so even transaction *ids*
are grouping-invariant.

Epoch transitions and the adversary cross partition boundaries, so they are
decomposed into partition-local control operations exactly as before:
membership removal runs on the source partition, admission (including the
budget-checked corruption decision, the state-transfer sizing and the
activation timer) on the destination partition, with reports flowing back
to the parent to pace the next swap batch.  The TEE rollback is armed
directly on the partition that owns the victim shard.

Known deviations from the legacy engine (documented, covered by tests):
cross-shard waits-for cycles are invisible to any single partition's
detector and resolve through the wait timeout instead (per-shard cycles are
still detected); wound-wait ages are ``(started_at, begin_seq, home_shard)``
tuples because ``begin_seq`` is only per-home unique; and reference-
committee round trips pay two relay hops (home -> reference -> home) where
the legacy parent paid one.  All are worker-count-invariant, which is the
property the engine guarantees.
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.consensus.cluster import ConsensusCluster, member_node_id
from repro.core.adversary import AdversaryState
from repro.core.config import ShardedSystemConfig
from repro.core.homecoord import (
    PARENT,
    AdmitReport,
    Command,
    HomeCoordinator,
    MarginReport,
    PartitionDriver,
    TxDone,
    WindowBlock,
    WindowResult,
    assign_partitions,
    group_by_dest,
    home_shard,
    inbound_sort_key,
    partition_tx_counter,
)
from repro.core.system import REFERENCE_SHARD_ID, ShardedBlockchain, ShardedRunResult
from repro.errors import ConfigurationError, SimulationError
from repro.ledger.chaincode import ChaincodeRegistry
from repro.ledger.transaction import Transaction, swap_tx_counter
from repro.sharding.assignment import assign_committees
from repro.sharding.reconfiguration import state_transfer_seconds
from repro.sim.latency import LanLatencyModel
from repro.sim.network import Network
from repro.sim.simulator import Simulator
from repro.txn.coordinator import (
    CoordinatorStats,
    DistributedTxOutcome,
    DistributedTxPhase,
    DistributedTxRecord,
)
from repro.txn.reference_committee import ReferenceCommitteeChaincode
from repro.workloads.kvstore import KVStoreWorkload
from repro.workloads.smallbank import SmallbankWorkload


def build_system(config: ShardedSystemConfig) -> ShardedBlockchain:
    """Build the engine the config asks for.

    ``workers=None`` — the default — returns the legacy single-simulation
    engine (bit-identical to every committed baseline); an integer returns
    the partitioned scale-out engine.
    """
    if config.workers is None:
        return ShardedBlockchain(config)
    return ScaleOutShardedBlockchain(config)


def _partition_seed(seed: int, shard_id: int) -> int:
    """Seed of a shard partition's own simulator (distinct per shard)."""
    return seed * 1_000_003 + 7_919 * shard_id + 17


@dataclass
class _BatchState:
    """Parent bookkeeping for one in-flight swap batch."""

    transition: Any
    index: int
    started_at: float
    outstanding: int
    max_transfer: float = 0.0


class ShardPartition:
    """One partition's self-contained sub-simulation (runs wherever its worker is).

    A normal shard partition owns its committee's consensus plus both
    coordination roles (home and participant, via
    :class:`~repro.core.homecoord.HomeCoordinator`) and its split of every
    open-loop driver.  The ``REFERENCE_SHARD_ID`` partition instead runs the
    reference committee's cluster and serves ``ref_submit`` commands from
    the homes.
    """

    def __init__(self, config: ShardedSystemConfig, shard_id: int) -> None:
        self.config = config
        self.shard_id = shard_id
        self.is_reference = shard_id == REFERENCE_SHARD_ID
        self.sim = Simulator(seed=_partition_seed(config.seed, shard_id))
        self.network = Network(self.sim, config.latency_model or LanLatencyModel())
        self.current_epoch = 0
        self._tx_counter = partition_tx_counter(shard_id)
        # The committee assignment and the adversary placement are pure
        # functions of the config, so every partition recomputes them and
        # agrees with every other (and the parent) without state shipping.
        assignment = assign_committees(list(range(config.total_nodes)),
                                       config.num_shards, seed=config.seed)
        self.adversary: Optional[AdversaryState] = (
            AdversaryState.place(config, assignment)
            if config.adversary is not None else None)
        byzantine = None
        if self.adversary is not None:
            byzantine = (self.adversary.reference_strategy if self.is_reference
                         else self.adversary.strategy_for(shard_id))
        self.cluster = ConsensusCluster(
            protocol=config.protocol,
            n=config.committee_size,
            config_overrides=dict(config.consensus_overrides),
            registry_factory=self._registry_factory,
            regions=config.regions,
            byzantine=byzantine,
            seed=config.seed + shard_id,
            shard_id=shard_id,
            sim=self.sim,
            network=self.network,
            max_series_samples=config.max_series_samples,
        )
        self._outbox: List[Any] = []
        self._routed: List[Command] = []
        self._outseq = itertools.count()
        self._watchers: Dict[str, Callable[[Any], None]] = {}
        self.cluster.subscribe_commits(self._on_commit)
        if self.is_reference:
            self.home: Optional[HomeCoordinator] = None
            self._reply_to: Dict[str, int] = {}
        else:
            self._populate()
            self.home = HomeCoordinator(self)
            self.drivers: Dict[int, PartitionDriver] = {}
            self._remote_inflight: Dict[str, PartitionDriver] = {}
            if (self.adversary is not None
                    and self.adversary.config.tee_rollback_shard == shard_id):
                self.adversary.arm_cluster(self.sim, self.cluster)

    # ------------------------------------------------------------ construction
    def _registry_factory(self) -> ChaincodeRegistry:
        registry = ChaincodeRegistry()
        if self.is_reference:
            registry.register(ReferenceCommitteeChaincode())
        elif self.config.benchmark == "smallbank":
            registry.register(
                SmallbankWorkload(num_accounts=self.config.num_keys).chaincode)
        else:
            registry.register(
                KVStoreWorkload(num_keys=self.config.num_keys).chaincode)
        return registry

    def _populate(self) -> None:
        """Load this shard's slice of the initial key space."""
        from repro.workloads.generator import shard_of_key
        from repro.workloads.smallbank import initial_balances

        if self.config.benchmark == "smallbank":
            items = list(initial_balances(self.config.num_keys).items())
        else:
            workload = KVStoreWorkload(num_keys=self.config.num_keys)
            items = [(workload.key_name(i), "0" * 8)
                     for i in range(min(self.config.num_keys, 5000))]
        for key, value in items:
            if shard_of_key(key, self.config.num_shards) != self.shard_id:
                continue
            for replica in self.cluster.replicas:
                replica.state.put(key, value)

    def add_driver(self, index: int, spec: Dict[str, Any]) -> None:
        """Attach (and start) this partition's split of driver ``index``."""
        driver = PartitionDriver(self, index, spec)
        self.drivers[index] = driver
        driver.start()

    # ------------------------------------------- surface used by HomeCoordinator
    def route(self, command: Command) -> None:
        """Send a coordination command; self-targets never leave the partition."""
        if command.dest == self.shard_id:
            self.sim.schedule_at(command.due, self._apply, command)
            return
        command.src = self.shard_id
        command.seq = next(self._outseq)
        self._routed.append(command)

    def watch(self, tx_id: str, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback`` with the receipt when ``tx_id`` commits locally."""
        self._watchers[tx_id] = callback

    def emit_tx_done(self, record: DistributedTxRecord) -> None:
        """Report a parent-submitted transaction's completion upward."""
        self._outbox.append(TxDone(
            time=self.sim.now, shard=self.shard_id, seq=next(self._outseq),
            tx_id=record.tx_id,
            committed=record.outcome is DistributedTxOutcome.COMMITTED,
            abort_reason=record.abort_reason, started_at=record.started_at,
            decided_at=record.decided_at, completed_at=record.completed_at))

    def submit_from_driver(self, tx: Transaction, driver: PartitionDriver) -> None:
        """Route a locally generated arrival to its home partition."""
        shards = self.home.shards_for_transaction(tx)
        home = home_shard(shards)
        if home == self.shard_id:
            self.home.submit_transaction(tx, on_complete=driver.on_local_complete)
            return
        self._remote_inflight[tx.tx_id] = driver
        self.route(Command(due=self.sim.now + self.config.relay_delay,
                           dest=home, op="client", txs=(tx,),
                           tx_id=tx.tx_id, origin=self.shard_id))

    # --------------------------------------------------------------- capture
    def _on_commit(self, event: Any) -> None:
        for receipt in event.receipts:
            if self.is_reference:
                reply_to = self._reply_to.pop(receipt.tx_id, None)
                if reply_to is not None:
                    self.route(Command(
                        due=self.sim.now + self.config.relay_delay,
                        dest=reply_to, op="ref_receipt", tx_id=receipt.tx_id,
                        receipt=receipt))
                continue
            watcher = self._watchers.pop(receipt.tx_id, None)
            if watcher is not None:
                watcher(receipt)

    # --------------------------------------------------------------- running
    def inject(self, commands: List[Command]) -> None:
        """Schedule inbound cross-partition commands at their exact due times.

        The caller injects them in the canonical ``(due, src, seq)`` order,
        which is the tie-break among same-time commands — so the apply order
        is worker-count-invariant.
        """
        for command in commands:
            self.sim.schedule_at(command.due, self._apply, command)

    def run_window(self, until: float, epoch: int) -> Tuple[List[Any], List[Command]]:
        """Drain events up to ``until``; return (parent outputs, routed commands).

        The partition's disjoint transaction-id stream is swapped into the
        process-global counter for the duration, so every id created here —
        driver arrivals, splitter prepares/decisions, reference votes —
        depends only on this partition's own history.
        """
        self.current_epoch = epoch
        previous = swap_tx_counter(self._tx_counter)
        try:
            self.sim.run_batched(until=until)
            self.sim.advance_clock(until)
        finally:
            self._tx_counter = swap_tx_counter(previous)
        out, self._outbox = self._outbox, []
        routed, self._routed = self._routed, []
        return out, routed

    def _apply(self, command: Command) -> None:
        op = command.op
        if op == "prepare2pc":
            self.home.handle_prepare(command)
        elif op == "vote":
            self.home.handle_vote(command)
        elif op == "decision":
            self.home.handle_decision(command)
        elif op == "ack":
            self.home.handle_ack(command)
        elif op == "client":
            self.home.handle_client(command)
        elif op == "client_done":
            driver = self._remote_inflight.pop(command.tx_id)
            driver.on_remote_done(command)
        elif op == "ref_submit":
            tx = command.txs[0]
            self._reply_to[tx.tx_id] = command.reply_to
            self.cluster.submit([tx], attempt=command.attempt)
        elif op == "ref_receipt":
            self.home.handle_ref_receipt(command)
        elif op == "remove":
            if self.adversary is not None:
                self.adversary.retire_physical(self.cluster, command.node_id)
            self.cluster.remove_member(command.node_id)
        elif op == "admit":
            self._apply_admit(command)
        elif op == "margin":
            if self.cluster.replicas:
                margin = (len(self.cluster.active_replicas())
                          - self.cluster.config.quorum_size(len(self.cluster.replicas)))
                self._outbox.append(MarginReport(
                    time=self.sim.now, shard=self.shard_id,
                    seq=next(self._outseq), marker=command.marker, margin=margin))
        elif op == "prepare":
            self.cluster.prepare_for_membership_change()
        elif op == "track":
            self.cluster.enable_request_tracking()
        else:  # pragma: no cover - protocol bug guard
            raise SimulationError(f"unknown partition op {op!r}")

    def _apply_admit(self, command: Command) -> None:
        """Admit a migrating joiner: corruption decision, sizing, activation.

        Mirrors the legacy ``_migrate_node`` destination half exactly: the
        corruption decision precedes ``admit_member`` (replicas snapshot
        their strategy at construction), the transfer is sized from this
        cluster's own state source, and activation is a local timer.
        """
        if self.adversary is not None:
            self.adversary.corrupt_joiner_if_budget(command.logical, self.cluster)
        node_id = self.cluster.admit_member()
        if node_id != command.node_id:
            raise SimulationError(
                f"scale-out desync: shard {self.shard_id} admitted {node_id}, "
                f"parent predicted {command.node_id}")
        transfer = command.transfer_override
        if transfer is None:
            source = self.cluster.state_source_replica()
            state_bytes = source.state.size_bytes() if source is not None else 0
            transfer = state_transfer_seconds(
                state_bytes, bandwidth_bps=self.config.state_bandwidth_bps)
        self.sim.schedule(transfer, self.cluster.activate_member, node_id)
        self._outbox.append(AdmitReport(
            time=self.sim.now, shard=self.shard_id, seq=next(self._outseq),
            marker=command.marker, node_id=node_id, transfer=transfer))

    # --------------------------------------------------------------- summary
    def summary(self) -> Dict[str, int]:
        counters = {
            "committed": self.cluster.honest_observer().committed_transactions(),
            "view_changes": int(self.cluster.monitor.counter_value(
                f"view_changes.shard{self.shard_id}")),
            "pending_events": self.sim.pending_events,
            "degraded_observer_reads": self.cluster.degraded_observer_reads,
        }
        if self.home is not None:
            counters["wounded"] = self.home.wounded_transactions
            counters["deadlocks"] = self.home.deadlocks_detected
            counters["wait_timeouts"] = self.home.wait_timeouts
        if self.adversary is not None:
            counters["migrated_corruptions"] = self.adversary.migrated_corruptions
            counters["suppressed_corruptions"] = self.adversary.suppressed_corruptions
            counters["rollback_events"] = len(self.adversary.rollback_status())
            counters["rollbacks_completed"] = sum(
                1 for event in self.adversary.rollback_events if event.completed)
        return counters

    def coordination_stats(self) -> Optional[CoordinatorStats]:
        return self.home.coordinator.stats if self.home is not None else None

    def driver_stats(self) -> Dict[int, Any]:
        if self.home is None:
            return {}
        return {index: driver.stats for index, driver in self.drivers.items()}


# --------------------------------------------------------------------------
# Partition groups and executors.
# --------------------------------------------------------------------------

class _PartitionGroup:
    """A fixed set of partitions drained together (one per worker process).

    Commands routed between two partitions of the same group are *held*
    locally instead of travelling through the parent — but they are still
    only injected at the next window start, in the same canonical order
    they would arrive in from the parent, so grouping cannot change what
    any partition observes.
    """

    def __init__(self, config: ShardedSystemConfig, shard_ids: List[int],
                 driver_specs: List[Dict[str, Any]]) -> None:
        self.shard_ids = sorted(shard_ids)
        self.partitions = {shard_id: ShardPartition(config, shard_id)
                           for shard_id in self.shard_ids}
        self._held: List[Command] = []
        for index, spec in enumerate(driver_specs):
            self.add_driver(index, spec)

    def add_driver(self, index: int, spec: Dict[str, Any]) -> None:
        for shard_id in self.shard_ids:
            partition = self.partitions[shard_id]
            if not partition.is_reference:
                partition.add_driver(index, spec)

    def run_window(self, block: WindowBlock) -> WindowResult:
        inbound = sorted(list(block.commands) + self._held, key=inbound_sort_key)
        self._held = []
        by_dest = group_by_dest(inbound)
        for shard_id in self.shard_ids:
            commands = by_dest.pop(shard_id, None)
            if commands:
                self.partitions[shard_id].inject(commands)
        if by_dest:  # pragma: no cover - protocol bug guard
            raise SimulationError(
                f"commands for partitions {sorted(by_dest)} delivered to a "
                f"group owning {self.shard_ids}")
        outputs: List[Any] = []
        routed_out: List[Command] = []
        for shard_id in self.shard_ids:
            out, routed = self.partitions[shard_id].run_window(
                block.until, block.epoch)
            outputs.extend(out)
            for command in routed:
                if command.dest in self.partitions:
                    self._held.append(command)
                else:
                    routed_out.append(command)
        return WindowResult(outputs=tuple(outputs), routed=tuple(routed_out))

    def summaries(self) -> Dict[int, Dict[str, int]]:
        return {shard_id: self.partitions[shard_id].summary()
                for shard_id in self.shard_ids}

    def coordination_stats(self) -> Dict[int, CoordinatorStats]:
        stats = {}
        for shard_id in self.shard_ids:
            partition_stats = self.partitions[shard_id].coordination_stats()
            if partition_stats is not None:
                stats[shard_id] = partition_stats
        return stats

    def driver_stats(self) -> Dict[int, Dict[int, Any]]:
        return {shard_id: self.partitions[shard_id].driver_stats()
                for shard_id in self.shard_ids}

    def pending_events(self) -> int:
        return (sum(p.sim.pending_events for p in self.partitions.values())
                + len(self._held))


class _InlineExecutor:
    """All partitions in this process, drained serially in shard order."""

    def __init__(self, config: ShardedSystemConfig, shard_ids: List[int],
                 driver_specs: List[Dict[str, Any]]) -> None:
        self.group = _PartitionGroup(config, shard_ids, driver_specs)

    @property
    def partitions(self) -> Dict[int, ShardPartition]:
        return self.group.partitions

    def run_window(self, block: WindowBlock) -> WindowResult:
        return self.group.run_window(block)

    def add_driver(self, index: int, spec: Dict[str, Any]) -> None:
        self.group.add_driver(index, spec)

    def summaries(self) -> Dict[int, Dict[str, int]]:
        return self.group.summaries()

    def coordination_stats(self) -> Dict[int, CoordinatorStats]:
        return self.group.coordination_stats()

    def driver_stats(self) -> Dict[int, Dict[int, Any]]:
        return self.group.driver_stats()

    def pending_events(self) -> int:
        return self.group.pending_events()

    def close(self) -> None:
        pass


def _worker_main(conn: Any, config: ShardedSystemConfig, shard_ids: List[int],
                 driver_specs: List[Dict[str, Any]]) -> None:
    """Worker process loop: build the owned partition group, serve barrier RPCs."""
    group = _PartitionGroup(config, shard_ids, driver_specs)
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "window":
                conn.send(("done", group.run_window(message[1])))
            elif kind == "drivers":
                for index, spec in message[1]:
                    group.add_driver(index, spec)
                conn.send(("drivers_ok",))
            elif kind == "summary":
                conn.send(("summary", group.summaries()))
            elif kind == "coordination":
                conn.send(("coordination", group.coordination_stats()))
            elif kind == "driver_stats":
                conn.send(("driver_stats", group.driver_stats()))
            elif kind == "pending":
                conn.send(("pending", group.pending_events()))
            elif kind == "stop":
                conn.send(("bye",))
                return
    except EOFError:  # parent went away; nothing useful left to do
        return


@dataclass
class _WorkerHandle:
    process: Any
    conn: Any
    owned: List[int]


class _ProcessExecutor:
    """Partitions spread over persistent worker processes.

    Grouping comes from :func:`~repro.core.homecoord.assign_partitions`
    (load-aware LPT by default).  A worker that dies mid-window is detected
    by polling its liveness while waiting for the reply, so a crash raises a
    clear error naming the lost partitions instead of hanging on a pipe.
    """

    def __init__(self, config: ShardedSystemConfig, shard_ids: List[int],
                 workers: int, driver_specs: List[Dict[str, Any]]) -> None:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            ctx = multiprocessing.get_context()
        self._workers: List[_WorkerHandle] = []
        for owned in assign_partitions(shard_ids, workers, config):
            if not owned:
                continue
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(target=_worker_main,
                                  args=(child_conn, config, owned, driver_specs),
                                  daemon=True)
            process.start()
            child_conn.close()
            self._workers.append(_WorkerHandle(process, parent_conn, owned))
        self._closed = False

    def _send(self, handle: _WorkerHandle, message: Tuple) -> None:
        try:
            handle.conn.send(message)
        except (OSError, ValueError) as exc:
            raise SimulationError(
                f"scale-out worker owning partitions {handle.owned} is gone "
                f"(exit code {handle.process.exitcode}); cannot send "
                f"{message[0]!r}") from exc

    def _recv(self, handle: _WorkerHandle, expected: str) -> Any:
        try:
            while not handle.conn.poll(0.25):
                if not handle.process.is_alive():
                    raise SimulationError(
                        f"scale-out worker owning partitions {handle.owned} "
                        f"died mid-run (exit code {handle.process.exitcode}; "
                        "see its stderr)")
            reply = handle.conn.recv()
        except EOFError as exc:
            raise SimulationError(
                f"scale-out worker owning partitions {handle.owned} closed "
                "its pipe mid-run (see its stderr)") from exc
        if reply[0] != expected:  # pragma: no cover - protocol bug guard
            raise SimulationError(f"unexpected worker reply {reply[0]!r}")
        return reply[1] if len(reply) > 1 else None

    def run_window(self, block: WindowBlock) -> WindowResult:
        by_dest = group_by_dest(block.commands)
        for handle in self._workers:
            commands: List[Command] = []
            for shard_id in handle.owned:
                commands.extend(by_dest.pop(shard_id, ()))
            self._send(handle, ("window", WindowBlock(
                until=block.until, epoch=block.epoch,
                commands=tuple(commands))))
        if by_dest:  # pragma: no cover - protocol bug guard
            raise SimulationError(
                f"commands for unowned partitions {sorted(by_dest)}")
        outputs: List[Any] = []
        routed: List[Command] = []
        for handle in self._workers:
            result = self._recv(handle, "done")
            outputs.extend(result.outputs)
            routed.extend(result.routed)
        return WindowResult(outputs=tuple(outputs), routed=tuple(routed))

    def add_driver(self, index: int, spec: Dict[str, Any]) -> None:
        for handle in self._workers:
            self._send(handle, ("drivers", [(index, spec)]))
        for handle in self._workers:
            self._recv(handle, "drivers_ok")

    def summaries(self) -> Dict[int, Dict[str, int]]:
        for handle in self._workers:
            self._send(handle, ("summary",))
        merged: Dict[int, Dict[str, int]] = {}
        for handle in self._workers:
            merged.update(self._recv(handle, "summary"))
        return merged

    def coordination_stats(self) -> Dict[int, CoordinatorStats]:
        for handle in self._workers:
            self._send(handle, ("coordination",))
        merged: Dict[int, CoordinatorStats] = {}
        for handle in self._workers:
            merged.update(self._recv(handle, "coordination"))
        return merged

    def driver_stats(self) -> Dict[int, Dict[int, Any]]:
        for handle in self._workers:
            self._send(handle, ("driver_stats",))
        merged: Dict[int, Dict[int, Any]] = {}
        for handle in self._workers:
            merged.update(self._recv(handle, "driver_stats"))
        return merged

    def pending_events(self) -> int:
        for handle in self._workers:
            self._send(handle, ("pending",))
        return sum(self._recv(handle, "pending") for handle in self._workers)

    def close(self) -> None:
        """Stop the workers; join with a timeout and terminate stragglers."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers:
            try:
                handle.conn.send(("stop",))
                self._recv(handle, "bye")
            except (OSError, SimulationError):
                pass
            handle.conn.close()
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.terminate()
                handle.process.join(timeout=5.0)


# --------------------------------------------------------------------------
# The scale-out system.
# --------------------------------------------------------------------------

class ScaleOutShardedBlockchain(ShardedBlockchain):
    """The partitioned engine: same API, barrier-synchronized execution.

    See the module docstring for the model.  Construction reuses the base
    class with the shard-facing hooks overridden: shard "clusters" become
    :class:`_ShardHandle` control stubs, and the coordination layer, the
    reference committee, lock admission, fault injection and the drivers
    all live inside the partitions.  The parent retains the epoch and
    adversary *control* machinery, the client-forwarding API and the
    barrier loop itself.
    """

    SUPPORTS_WORKERS = True
    #: OpenLoopDriver checks this: on this engine drivers register a spec
    #: and the partitions generate (their splits of) the arrival stream.
    IN_PARTITION_DRIVERS = True

    def __init__(self, config: ShardedSystemConfig) -> None:
        if config.workers is None:
            raise ConfigurationError(
                "ScaleOutShardedBlockchain requires config.workers")
        # State the overridden construction hooks touch; must exist before
        # the base constructor runs them.
        self._cmd_buffer: List[Command] = []
        self._parent_seq = itertools.count()
        self._marker_counter = itertools.count()
        self._pending_admits: Dict[int, _BatchState] = {}
        self._margin_sinks: Dict[int, Any] = {}
        self._executor: Optional[Any] = None
        self._next_slot: Dict[int, int] = {}
        self._driver_specs: List[Dict[str, Any]] = []
        self._remote_txs: Dict[str, Tuple[DistributedTxRecord, Optional[Callable]]] = {}
        #: Wall-clock split of the barrier loop: time inside executor windows
        #: (partition work) vs. time draining the parent's own simulation.
        self._window_seconds = 0.0
        self._parent_seconds = 0.0
        super().__init__(config)
        self._next_slot = {shard_id: config.committee_size
                           for shard_id in range(config.num_shards)}
        self.barrier_interval = (config.barrier_interval
                                 if config.barrier_interval is not None
                                 else config.relay_delay)

    # -------------------------------------------------------------- executor
    @property
    def executor(self) -> Any:
        if self._executor is None:
            # Partitions get the config minus the worker knobs themselves
            # (their own engine is the plain in-process one); the fault
            # scenario stays — each home coordinator binds its own deep copy.
            spec = dataclasses.replace(self.config, workers=None,
                                       barrier_interval=None)
            shard_ids = list(range(self.config.num_shards))
            if self.config.use_reference_committee:
                shard_ids.append(REFERENCE_SHARD_ID)
            if self.config.workers <= 1:
                self._executor = _InlineExecutor(spec, shard_ids,
                                                 self._driver_specs)
            else:
                self._executor = _ProcessExecutor(spec, shard_ids,
                                                  self.config.workers,
                                                  self._driver_specs)
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.close()

    # --------------------------------------------------- construction hooks
    def _build_shard_cluster(self, shard_id: int) -> Any:
        return _ShardHandle(self, shard_id)

    def _bind_fault_scenario(self):
        return None  # per-home deep copies bind inside the partitions

    def _build_admission(self):
        return None  # participant-side admission lives in the partitions

    def _maybe_build_reference(self):
        return None  # the reference committee is partition REFERENCE_SHARD_ID

    def _populate_states(self) -> None:
        pass  # each partition loads its own slice of the key space

    def _attach_observers(self) -> None:
        pass  # receipts are watched inside the partitions

    def _arm_adversary(self) -> None:
        pass  # the partition owning tee_rollback_shard arms its own copy

    def _initial_replica_map(self) -> Dict[int, int]:
        mapping: Dict[int, int] = {}
        for committee in self.assignment.committees:
            for slot, logical in enumerate(committee.members):
                mapping[logical] = member_node_id(committee.shard_id, slot)
        return mapping

    # ------------------------------------------------------------ drivers
    def register_partition_driver(self, spec: Dict[str, Any]) -> int:
        """Register one open-loop driver's spec; partitions run its splits.

        Returns the driver's index (the key into :meth:`driver_stats`).
        Registration before the first ``advance`` is free — the specs ride
        along with partition construction; afterwards it is a live RPC to
        every worker.
        """
        index = len(self._driver_specs)
        self._driver_specs.append(spec)
        if self._executor is not None:
            self._executor.add_driver(index, spec)
        return index

    def driver_stats(self, index: int):
        """Driver ``index``'s statistics, merged over all partitions."""
        from repro.core.driver import DriverStats

        merged = DriverStats()
        per_partition = self.executor.driver_stats()
        for shard_id in sorted(per_partition):
            stats = per_partition[shard_id].get(index)
            if stats is not None:
                merged.merge(stats)
        return merged

    # ------------------------------------------------------------ submission
    def _emit(self, command: Command) -> None:
        command.src = PARENT
        command.seq = next(self._parent_seq)
        self._cmd_buffer.append(command)

    def submit_transaction(self, tx: Transaction,
                           on_complete: Optional[Callable[[DistributedTxRecord], None]] = None) -> DistributedTxRecord:
        """Forward an API-submitted transaction to its home partition.

        The returned record is a parent-side shadow: its outcome fields are
        filled in when the home's completion report arrives through the
        barrier exchange (``on_complete`` fires at that point).  The real
        coordination state lives in the home partition.
        """
        shards = self.shards_for_transaction(tx)
        record = DistributedTxRecord(tx_id=tx.tx_id, transaction=tx,
                                     shards=sorted(shards),
                                     phase=DistributedTxPhase.BEGINNING,
                                     started_at=self.sim.now)
        self._remote_txs[tx.tx_id] = (record, on_complete)
        self._emit(Command(due=self.sim.now + self.config.relay_delay,
                           dest=home_shard(shards), op="client", txs=(tx,),
                           tx_id=tx.tx_id, origin=PARENT))
        return record

    def _on_tx_done(self, done: TxDone) -> None:
        entry = self._remote_txs.pop(done.tx_id, None)
        if entry is None:
            return
        record, on_complete = entry
        record.phase = DistributedTxPhase.DONE
        record.outcome = (DistributedTxOutcome.COMMITTED if done.committed
                          else DistributedTxOutcome.ABORTED)
        record.abort_reason = done.abort_reason
        record.decided_at = done.decided_at
        record.completed_at = done.completed_at
        if on_complete is not None:
            on_complete(record)

    # ------------------------------------------------------------ barrier loop
    def advance(self, until: float, max_events: Optional[int] = None) -> None:
        """Run the barrier loop to ``until`` (``max_events`` is not supported).

        Strict alternation per window: ship the buffered command block,
        drain the partitions, inject their outputs at exact times, drain
        the parent.  Commands the partitions routed to each other come back
        in the window result and ship with the *next* block.
        """
        delta = self.barrier_interval
        now = self.sim.now
        while now < until:
            end = min(now + delta, until)
            commands, self._cmd_buffer = self._cmd_buffer, []
            # detlint: disable=DET001 -- coordinator_work_share wall-time split: measures host cost only, never feeds simulated time or the event stream
            started = perf_counter()
            result = self.executor.run_window(WindowBlock(
                until=end, epoch=self.epochs.current_epoch,
                commands=tuple(sorted(commands, key=inbound_sort_key))))
            # detlint: disable=DET001 -- coordinator_work_share wall-time split: measures host cost only, never feeds simulated time or the event stream
            mid = perf_counter()
            self._window_seconds += mid - started
            self._cmd_buffer.extend(result.routed)
            self._deliver_outputs(list(result.outputs))
            self.sim.run_batched(until=end)
            self.sim.advance_clock(end)
            # detlint: disable=DET001 -- coordinator_work_share wall-time split: measures host cost only, never feeds simulated time or the event stream
            self._parent_seconds += perf_counter() - mid
            now = end

    @property
    def coordinator_work_share(self) -> float:
        """Fraction of barrier-loop wall-clock spent in the parent tier.

        The tentpole's target metric: with coordination, admission, the
        reference committee and the drivers all in-partition, the parent's
        share of each window should be small (< 20% under the benchmark
        gate) — it only merges outputs and runs epoch/adversary control.
        """
        total = self._window_seconds + self._parent_seconds
        return self._parent_seconds / total if total > 0 else 0.0

    def pending_activity(self) -> bool:
        return (self.sim.pending_events > 0 or bool(self._cmd_buffer)
                or self.executor.pending_events() > 0)

    def _deliver_outputs(self, outputs: List[Any]) -> None:
        """Inject partition outputs as parent events at their exact times.

        The ``(time, shard, seq)`` sort is the canonical arrival order: it
        depends only on what the partitions did, never on how they were
        grouped onto workers.
        """
        for item in sorted(outputs, key=lambda it: (it.time, it.shard, it.seq)):
            if isinstance(item, TxDone):
                self.sim.schedule_at(item.time, self._on_tx_done, item)
            elif isinstance(item, AdmitReport):
                self.sim.schedule_at(item.time, self._on_admit_report, item)
            elif isinstance(item, MarginReport):
                self.sim.schedule_at(item.time, self._on_margin_report, item)
            else:  # pragma: no cover - protocol bug guard
                raise SimulationError(f"unknown partition output {item!r}")

    # ------------------------------------------------------------ relays
    def _relay_shard_single(self, shard_id: int, tx: Transaction,
                            attempt: int = 0) -> None:  # pragma: no cover
        raise SimulationError(
            "parent-side shard relay on the scale-out engine: coordination "
            "traffic must originate in the home partitions")

    def _relay_cohort(self, group: List[Tuple[int, Transaction]],
                      extra_delay: float = 0.0,
                      attempt: int = 0) -> None:  # pragma: no cover
        raise SimulationError(
            "parent-side cohort relay on the scale-out engine: coordination "
            "traffic must originate in the home partitions")

    # ------------------------------------------------------------ run/results
    def coordination_stats(self) -> CoordinatorStats:
        """Merge the per-partition home coordinators' statistics.

        Partitions are merged in sorted shard order, so the concatenated
        latency list (kept only under ``retain_tx_records``) is
        deterministic too.
        """
        merged = CoordinatorStats()
        per_partition = self.executor.coordination_stats()
        for shard_id in sorted(per_partition):
            stats = per_partition[shard_id]
            merged.started += stats.started
            merged.committed += stats.committed
            merged.aborted += stats.aborted
            merged.cross_shard += stats.cross_shard
            merged.latency_sum += stats.latency_sum
            merged.latency_count += stats.latency_count
            merged.latencies.extend(stats.latencies)
            merged.duplicate_votes += stats.duplicate_votes
            merged.duplicate_acks += stats.duplicate_acks
            merged.equivocations += stats.equivocations
            merged.stale_messages += stats.stale_messages
            merged.coordinator_crashes += stats.coordinator_crashes
            merged.redriven_transactions += stats.redriven_transactions
        return merged

    def result(self, duration: float) -> ShardedRunResult:
        stats = self.coordination_stats()
        summaries = self.executor.summaries()
        per_shard = {shard_id: summaries[shard_id]["committed"]
                     for shard_id in sorted(summaries)
                     if shard_id != REFERENCE_SHARD_ID}
        reference = summaries.get(REFERENCE_SHARD_ID)
        return ShardedRunResult(
            duration=duration,
            committed_transactions=stats.committed,
            aborted_transactions=stats.aborted,
            throughput_tps=stats.committed / duration if duration > 0 else 0.0,
            abort_rate=stats.abort_rate,
            mean_latency=stats.mean_latency,
            cross_shard_fraction=(stats.cross_shard / stats.started
                                  if stats.started else 0.0),
            per_shard_committed=per_shard,
            reference_committee_transactions=(reference["committed"]
                                              if reference is not None else 0),
            current_epoch=self.epochs.current_epoch,
            reconfigurations_completed=self.reconfigurations_completed,
        )

    def shard_summaries(self) -> Dict[int, Dict[str, int]]:
        return {shard_id: summary
                for shard_id, summary in self.executor.summaries().items()
                if shard_id != REFERENCE_SHARD_ID}

    def audit_clusters(self) -> Dict[int, ConsensusCluster]:
        if self.config.workers > 1:
            raise ConfigurationError(
                "the safety auditor needs the replicas in-process: audit a "
                "workers=1 run (bit-identical to workers=N by the engine's "
                "determinism guarantee) instead")
        return {shard_id: partition.cluster
                for shard_id, partition in self.executor.partitions.items()}

    # ------------------------------------------------------------ epoch ops
    def _run_migration_step(self, transition: Any, index: int) -> None:
        """Emit one swap batch as partition control ops; reports pace the next.

        Mirrors the legacy step exactly, shifted by the relay lookahead: ops
        execute on their partitions at ``t + relay_delay``, the destination
        sizes the transfer itself, and the next batch starts at
        ``max(t + batch_interval, t_ops + max_transfer)`` once every admit
        of this batch has reported — the same pacing rule as the legacy
        ``max(batch_interval, max_transfer)`` reschedule.
        """
        plan = transition.plan
        if index >= plan.num_steps:
            self._complete_transition(transition)
            return
        now = self.sim.now
        due = now + self.config.relay_delay
        markers: List[int] = []
        for logical in sorted(plan.nodes_in_step(index)):
            old_shard = transition.old_map[logical]
            new_shard = transition.new_map[logical]
            self._emit(Command(due=due, dest=old_shard, op="remove",
                               node_id=self._replica_of[logical]))
            slot = self._next_slot[new_shard]
            self._next_slot[new_shard] = slot + 1
            new_physical = member_node_id(new_shard, slot)
            marker = next(self._marker_counter)
            markers.append(marker)
            self._emit(Command(due=due, dest=new_shard, op="admit",
                               node_id=new_physical, logical=logical,
                               transfer_override=transition.transfer_override,
                               marker=marker))
            self._replica_of[logical] = new_physical
            transition.stats.nodes_moved += 1
        batch = _BatchState(transition=transition, index=index,
                            started_at=now, outstanding=len(markers))
        for marker in markers:
            self._pending_admits[marker] = batch
        # Margins are sampled on every shard after this batch's ops applied,
        # mirroring the legacy per-batch _record_membership_margins sweep.
        for shard_id in sorted(self.shards):
            marker = next(self._marker_counter)
            self._margin_sinks[marker] = transition.stats
            self._emit(Command(due=due, dest=shard_id, op="margin",
                               marker=marker))
        if not markers:
            delay = transition.batch_interval if index + 1 < plan.num_steps else 0.0
            self.sim.schedule(delay, self._run_migration_step, transition,
                              index + 1)

    def _on_admit_report(self, report: AdmitReport) -> None:
        batch = self._pending_admits.pop(report.marker)
        batch.outstanding -= 1
        batch.max_transfer = max(batch.max_transfer, report.transfer)
        if batch.outstanding:
            return
        transition = batch.transition
        if batch.index + 1 < transition.plan.num_steps:
            next_time = max(batch.started_at + transition.batch_interval,
                            self.sim.now + batch.max_transfer)
            self.sim.schedule_at(next_time, self._run_migration_step,
                                 transition, batch.index + 1)
        else:
            self.sim.schedule(batch.max_transfer, self._run_migration_step,
                              transition, batch.index + 1)

    def _on_margin_report(self, report: MarginReport) -> None:
        stats = self._margin_sinks.pop(report.marker)
        previous = stats.min_active_margin.get(report.shard)
        if previous is None or report.margin < previous:
            stats.min_active_margin[report.shard] = report.margin


class _ShardHandle:
    """Parent-side stand-in for a partitioned shard's cluster.

    Implements exactly the cluster surface the parent's *control* paths use
    (request tracking and membership-change preparation become buffered
    commands); data-path calls must originate inside the partitions, so a
    direct ``submit`` is a protocol bug and says so.
    """

    def __init__(self, system: ScaleOutShardedBlockchain, shard_id: int) -> None:
        self.system = system
        self.shard_id = shard_id

    def submit(self, transactions: Any, to: Any = None, attempt: int = 0) -> None:
        raise SimulationError(
            f"direct submit to partitioned shard {self.shard_id}: benchmark "
            "traffic enters through submit_transaction (forwarded to the "
            "home partition) or the in-partition drivers")

    def enable_request_tracking(self) -> None:
        self.system._emit(Command(
            due=self.system.sim.now + self.system.config.relay_delay,
            dest=self.shard_id, op="track"))

    def prepare_for_membership_change(self) -> None:
        self.system._emit(Command(
            due=self.system.sim.now + self.system.config.relay_delay,
            dest=self.shard_id, op="prepare"))
