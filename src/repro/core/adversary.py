"""System-wide adversary engine for live :class:`ShardedBlockchain` runs.

The paper's headline claims are *safety under attack*: the attested log
blocks per-recipient equivocation (Section 4.1), and the Appendix-A rollback
defence survives enclave restarts fed stale sealed state.  The consensus
layer has carried :mod:`repro.consensus.byzantine` strategies since the
single-cluster experiments, but they only ever ran against one committee in
isolation.  This module turns them into a deployment-wide adversary:

* :class:`AdversaryConfig` is the declarative knob on
  :class:`~repro.core.config.ShardedSystemConfig`.  It names a strategy from
  :data:`repro.consensus.byzantine.STRATEGIES`, how many members to corrupt
  per shard (never more than each committee's ``f``), whether the reference
  committee is also infiltrated, and an optional mid-run TEE rollback attack.
* :class:`AdversaryState` is the runtime: it places corruptions
  **seed-deterministically** (same seed, same corrupted members, same attack
  trace), hands each cluster its shard's strategy object, follows corrupted
  *logical* nodes across epoch migrations — a compromised machine stays
  compromised when the beacon reassigns it to another committee — while
  keeping every committee inside its fault budget, and schedules the TEE
  rollback (enclave restart + stale seal replay + Appendix-A recovery)
  against a live replica.

The adversary composes with the PR3 fault scenarios (coordination-layer
faults) and the PR4 epoch lifecycle (corrupted members depart and join at
boundaries); the default ``adversary=None`` schedules nothing and leaves the
run bit-identical to the honest path.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.consensus.byzantine import STRATEGIES, ByzantineStrategy, EquivocatingAttacker
from repro.consensus.cluster import PROTOCOLS, ConsensusCluster, member_node_id
from repro.errors import ConfigurationError


@dataclass
class AdversaryConfig:
    """Declarative description of the adversary attacking a sharded run.

    Parameters
    ----------
    strategy:
        Name from :data:`repro.consensus.byzantine.STRATEGIES`
        (``"equivocate"``, ``"silent-leader"``, ``"crash"``, ``"honest"``).
    corrupted_per_shard:
        Corrupted members per targeted committee.  ``None`` corrupts each
        committee's full fault tolerance ``f``; values above ``f`` are
        clamped (with a warning) — the paper's guarantees are conditioned on
        at most ``f`` corruptions per committee, and the knob models the
        threat model, not its violation.
    shard_ids:
        Committees to infiltrate (``None`` = every shard).
    include_reference:
        Also corrupt up to ``f`` members of the reference committee, putting
        the 2PC state machine itself under attack.
    follow_migrations:
        Corruption follows *logical* nodes across epoch reconfigurations: a
        corrupted node that migrates misbehaves in its destination committee
        too — unless that committee already holds ``f`` corrupted members,
        in which case the joiner behaves honestly (budget kept; counted in
        ``AdversaryState.suppressed_corruptions``).
    also_silent_leader:
        For the ``equivocate`` strategy: whether corrupted leaders also
        withhold proposals (the paper's combined Figure-8 attack).
    tee_rollback_at:
        When set, at this simulated time an honest AHL-family replica's
        enclave is restarted and fed the stale seal captured at
        ``tee_rollback_stale_seal_at`` (default: half of ``tee_rollback_at``),
        then runs the Appendix-A recovery procedure.  Requires a protocol
        with an attested log.
    tee_rollback_shard:
        Shard whose committee hosts the rollback victim.
    salt:
        Extra entropy label mixed into the placement RNG, so several
        adversarial runs of one seed can draw independent placements.
    """

    strategy: str = "equivocate"
    corrupted_per_shard: Optional[int] = None
    shard_ids: Optional[Sequence[int]] = None
    include_reference: bool = False
    follow_migrations: bool = True
    also_silent_leader: bool = True
    tee_rollback_at: Optional[float] = None
    tee_rollback_shard: int = 0
    tee_rollback_stale_seal_at: Optional[float] = None
    salt: str = ""

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown adversary strategy {self.strategy!r}; "
                f"available: {sorted(STRATEGIES)}")
        if self.corrupted_per_shard is not None and self.corrupted_per_shard < 0:
            raise ConfigurationError("corrupted_per_shard must be non-negative")
        if self.tee_rollback_at is not None and self.tee_rollback_at <= 0:
            raise ConfigurationError("tee_rollback_at must be positive when set")
        if self.tee_rollback_stale_seal_at is not None:
            if self.tee_rollback_at is None:
                raise ConfigurationError(
                    "tee_rollback_stale_seal_at requires tee_rollback_at")
            if not 0 < self.tee_rollback_stale_seal_at < self.tee_rollback_at:
                raise ConfigurationError(
                    "tee_rollback_stale_seal_at must fall before tee_rollback_at")


@dataclass
class RollbackEvent:
    """Bookkeeping of one executed TEE rollback attack."""

    victim: int
    shard_id: int
    sealed_at: float
    restarted_at: float
    recovery_floor: Optional[int] = None
    #: Filled by :meth:`AdversaryState.rollback_status` polling once the
    #: enclave thaws; None while recovery is still in progress.
    completed: bool = False


class AdversaryState:
    """Runtime of an armed adversary: placements, strategies, attack events."""

    def __init__(self, adversary: AdversaryConfig, system_config: Any) -> None:
        self.config = adversary
        self.system_config = system_config
        #: Per-shard strategy objects handed to the clusters (one instance
        #: per committee — strategies may keep per-committee attack state).
        self.strategies: Dict[int, ByzantineStrategy] = {}
        self.reference_strategy: Optional[ByzantineStrategy] = None
        #: Logical node ids (as used in committee assignments) the adversary
        #: controls; membership is decided once at placement and then follows
        #: the nodes through epoch migrations.
        self.corrupted_logical: Set[int] = set()
        #: At most this many corrupted members per committee (min of the
        #: requested count and each committee's fault tolerance ``f``).
        self.fault_budget = 0
        self.migrated_corruptions = 0
        self.suppressed_corruptions = 0
        self.rollback_events: List[RollbackEvent] = []
        self._stale_seal = None
        self._rollback_victim = None
        self._seal_time = 0.0

    # ------------------------------------------------------------- placement
    @staticmethod
    def place(system_config: Any, assignment: Any) -> "AdversaryState":
        """Choose corrupted members seed-deterministically and build strategies.

        ``assignment`` is the construction-time
        :class:`~repro.sharding.committee.CommitteeAssignment`; the adversary
        corrupts committee *slots* (logical nodes), drawn per shard from an
        RNG keyed ``(seed, salt, shard)`` so the placement is a pure function
        of the configuration — same seed, same corrupted members.  Each
        committee loses at most its fault tolerance ``f``.
        """
        adversary: AdversaryConfig = system_config.adversary
        state = AdversaryState(adversary, system_config)
        _, config_factory = PROTOCOLS[system_config.protocol]
        consensus_config = config_factory(**dict(system_config.consensus_overrides))
        if adversary.tee_rollback_at is not None and not consensus_config.use_attested_log:
            raise ConfigurationError(
                f"tee_rollback_at requires an attested-log protocol; "
                f"{system_config.protocol!r} has none to roll back")
        n = system_config.committee_size
        f = consensus_config.fault_tolerance(n)
        budget = f if adversary.corrupted_per_shard is None else adversary.corrupted_per_shard
        if budget > f:
            warnings.warn(
                f"corrupted_per_shard {budget} exceeds the committee fault "
                f"tolerance f={f}; clamped — the adversary models the threat "
                "model, not its violation", RuntimeWarning, stacklevel=2)
            budget = f
        state.fault_budget = budget
        targeted = (set(adversary.shard_ids) if adversary.shard_ids is not None
                    else set(range(system_config.num_shards)))
        unknown = targeted - set(range(system_config.num_shards))
        if unknown:
            raise ConfigurationError(f"adversary targets unknown shards {sorted(unknown)}")
        committees = {committee.shard_id: committee for committee in assignment.committees}
        for shard_id in range(system_config.num_shards):
            indices: List[int] = []
            if shard_id in targeted and budget > 0:
                rng = random.Random(
                    f"adversary:{system_config.seed}:{adversary.salt}:{shard_id}")
                indices = sorted(rng.sample(range(n), budget))
            physical = [member_node_id(shard_id, index) for index in indices]
            state.strategies[shard_id] = state._new_strategy(physical)
            members = committees[shard_id].members
            state.corrupted_logical.update(members[index] for index in indices)
        if adversary.include_reference:
            from repro.core.system import REFERENCE_SHARD_ID

            rng = random.Random(
                f"adversary:{system_config.seed}:{adversary.salt}:reference")
            indices = sorted(rng.sample(range(n), budget)) if budget > 0 else []
            state.reference_strategy = state._new_strategy(
                [member_node_id(REFERENCE_SHARD_ID, index) for index in indices])
        return state

    def _new_strategy(self, corrupted: Sequence[int]) -> ByzantineStrategy:
        cls = STRATEGIES[self.config.strategy]
        if cls is EquivocatingAttacker:
            return cls(corrupted, also_silent_leader=self.config.also_silent_leader)
        return cls(corrupted)

    def strategy_for(self, shard_id: int) -> Optional[ByzantineStrategy]:
        """The strategy object the given shard's cluster should carry."""
        return self.strategies.get(shard_id)

    def corrupted_physical_ids(self) -> Set[int]:
        """Every physical node id currently marked corrupted (all shards)."""
        ids: Set[int] = set()
        for strategy in self.strategies.values():
            ids |= strategy.corrupted
        if self.reference_strategy is not None:
            ids |= self.reference_strategy.corrupted
        return ids

    # ------------------------------------------------------------ migrations
    def on_migrate(self, logical: int, old_physical: int,
                   source_cluster: ConsensusCluster,
                   dest_cluster: ConsensusCluster) -> None:
        """A node is about to move committees: update who misbehaves where.

        Called *before* ``admit_member`` constructs the joiner, because each
        replica snapshots its strategy once at construction.  The departing
        physical id is retired from the source shard's corrupted set; if the
        logical node is adversary-controlled, the destination committee's
        strategy gains the joiner's id — unless that committee already holds
        its full fault budget of corrupted members, in which case the node
        lies low (``suppressed_corruptions``), keeping every committee inside
        the threat model the paper's analysis assumes.
        """
        self.retire_physical(source_cluster, old_physical)
        self.corrupt_joiner_if_budget(logical, dest_cluster)

    def retire_physical(self, source_cluster: ConsensusCluster,
                        old_physical: int) -> None:
        """The departing physical id stops misbehaving in its old committee.

        The source half of :meth:`on_migrate`; it only touches the source
        cluster, so the scale-out engine can run it on the partition that
        owns the source shard.
        """
        source_strategy = self.strategies.get(source_cluster.shard_id)
        if source_strategy is not None:
            source_strategy.corrupted.discard(old_physical)

    def corrupt_joiner_if_budget(self, logical: int,
                                 dest_cluster: ConsensusCluster) -> bool:
        """Corrupt the next joiner of ``dest_cluster`` if the budget allows.

        The destination half of :meth:`on_migrate`: the decision depends only
        on the logical node's placement-time corruption (a pure function of
        the config) and the destination cluster's current replicas, so the
        scale-out engine can run it on the partition that owns the
        destination shard and reach the same verdict the global path would.
        Returns whether the joiner will misbehave.
        """
        if not self.config.follow_migrations:
            return False
        if logical not in self.corrupted_logical:
            return False
        dest_strategy = self.strategies.get(dest_cluster.shard_id)
        if dest_strategy is None:
            return False
        already = sum(1 for replica in dest_cluster.replicas
                      if replica.byzantine is not None and not replica.crashed)
        if already >= self.fault_budget:
            self.suppressed_corruptions += 1
            return False
        dest_strategy.corrupted.add(dest_cluster.next_member_id())
        self.migrated_corruptions += 1
        return True

    # ---------------------------------------------------------- TEE rollback
    def arm(self, system: Any) -> None:
        """Schedule the configured TEE rollback attack on a live system."""
        if self.config.tee_rollback_at is None:
            return
        if self.config.tee_rollback_shard not in system.shards:
            raise ConfigurationError(
                f"tee_rollback_shard {self.config.tee_rollback_shard} does not exist")
        self.arm_cluster(system.sim, system.shards[self.config.tee_rollback_shard])

    def arm_cluster(self, sim: Any, cluster: ConsensusCluster) -> None:
        """Schedule the rollback against one cluster on its own simulator.

        Both attack events fire at *absolute* configured times and touch only
        the victim cluster, so the scale-out engine arms the adversary on the
        partition that owns ``tee_rollback_shard`` and the attack trace is
        identical to the global-simulation path.
        """
        adversary = self.config
        if adversary.tee_rollback_at is None:
            return
        seal_at = (adversary.tee_rollback_stale_seal_at
                   if adversary.tee_rollback_stale_seal_at is not None
                   else adversary.tee_rollback_at / 2.0)
        sim.schedule_at(seal_at, self._capture_stale_seal, sim, cluster)
        sim.schedule_at(adversary.tee_rollback_at, self._execute_rollback, sim, cluster)

    def _pick_rollback_victim(self, cluster: ConsensusCluster):
        """Deterministically choose the honest replica whose host is attacked.

        The *last* honest, attested member in committee order: honest because
        Appendix A defends correct nodes whose untrusted host storage serves
        stale seals, and last because the initial leader sits at the front of
        the rotation — attacking a non-leader isolates the rollback defence
        from leader-replacement effects.
        """
        honest = [replica for replica in cluster.replicas
                  if replica.byzantine is None and not replica.crashed
                  and hasattr(replica, "attested_log")]
        return honest[-1] if honest else None

    def _capture_stale_seal(self, sim: Any, cluster: ConsensusCluster) -> None:
        victim = self._pick_rollback_victim(cluster)
        if victim is None:
            return
        self._rollback_victim = victim
        self._stale_seal = victim.attested_log.seal_logs()
        self._seal_time = sim.now

    def _execute_rollback(self, sim: Any, cluster: ConsensusCluster) -> None:
        victim = self._rollback_victim
        if victim is None or victim.crashed:
            return  # victim never sealed, or left/crashed meanwhile
        victim.restart_attested_log(self._stale_seal)
        floor = victim.begin_log_recovery()
        self.rollback_events.append(RollbackEvent(
            victim=victim.node_id, shard_id=self.config.tee_rollback_shard,
            sealed_at=self._seal_time, restarted_at=sim.now,
            recovery_floor=floor,
        ))

    def rollback_status(self) -> List[RollbackEvent]:
        """Refresh and return the rollback bookkeeping (completion flags)."""
        victim = self._rollback_victim
        for event in self.rollback_events:
            if victim is not None and victim.node_id == event.victim:
                event.completed = not victim.attested_log.recovering
        return self.rollback_events
