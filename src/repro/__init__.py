"""repro — reproduction of "Towards Scaling Blockchain Systems via Sharding".

Public API overview
===================

* :class:`repro.core.ShardedBlockchain` / :class:`repro.core.ShardedSystemConfig`
  — the end-to-end sharded blockchain (committees + AHL+ consensus +
  reference-committee 2PC/2PL for cross-shard transactions).
* :class:`repro.consensus.ConsensusCluster` — a single committee running any
  of the evaluated protocols (HL, AHL, AHL+, AHLR, Tendermint, IBFT, Raft).
* :mod:`repro.sharding` — committee sizing, the TEE randomness beacon
  protocol, epoch reconfiguration, cross-shard probability.
* :mod:`repro.txn` — the reference-committee 2PC state machine and the
  OmniLedger / RapidChain baselines.
* :mod:`repro.workloads` — the KVStore and Smallbank benchmarks.
* :mod:`repro.experiments` — one module per table/figure of the paper's
  evaluation; each returns structured rows that the benchmark harness prints.
"""

from repro.core.config import ShardedSystemConfig
from repro.core.system import ShardedBlockchain, ShardedRunResult
from repro.core.client_api import ShardedClient, attach_clients
from repro.core.driver import OpenLoopDriver, attach_open_loop_drivers
from repro.consensus.cluster import ConsensusCluster, build_cluster, PROTOCOLS
from repro.sim.simulator import Simulator
from repro.sim.network import Network

__version__ = "1.0.0"

__all__ = [
    "ShardedSystemConfig",
    "ShardedBlockchain",
    "ShardedRunResult",
    "ShardedClient",
    "attach_clients",
    "OpenLoopDriver",
    "attach_open_loop_drivers",
    "ConsensusCluster",
    "build_cluster",
    "PROTOCOLS",
    "Simulator",
    "Network",
    "__version__",
]
