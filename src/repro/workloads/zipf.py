"""Zipf-distributed key selection.

Figure 13 (right) varies the workload's Zipf coefficient between 0 (uniform)
and ~2 (highly skewed) to study the abort rate of the cross-shard commit
protocol under contention.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Optional

from repro.errors import WorkloadError
from repro.workloads import vectorized


class ZipfGenerator:
    """Draws integers in ``[0, population)`` with Zipf(s) popularity.

    ``coefficient = 0`` degenerates to the uniform distribution.  The
    implementation precomputes the CDF, so draws are O(log population).
    """

    def __init__(self, population: int, coefficient: float = 0.0,
                 rng: Optional[random.Random] = None, seed: int = 0) -> None:
        if population < 1:
            raise WorkloadError("population must be at least 1")
        if coefficient < 0:
            raise WorkloadError("the Zipf coefficient must be non-negative")
        self.population = population
        self.coefficient = coefficient
        self._rng = rng or random.Random(seed)
        self._cdf = self._build_cdf()
        #: numpy copy of the CDF, built lazily on the first block draw.
        self._cdf_array = None

    def _build_cdf(self) -> List[float]:
        weights = [1.0 / ((rank + 1) ** self.coefficient) for rank in range(self.population)]
        total = sum(weights)
        cdf: List[float] = []
        cumulative = 0.0
        for weight in weights:
            cumulative += weight / total
            cdf.append(cumulative)
        cdf[-1] = 1.0
        return cdf

    def sample(self) -> int:
        """Draw one rank (0 = most popular)."""
        u = self._rng.random()
        return bisect.bisect_left(self._cdf, u)

    def sample_block(self, count: int) -> List[int]:
        """Draw ``count`` ranks, bit-identical to ``count`` :meth:`sample` calls.

        The uniforms come from :func:`repro.workloads.vectorized.bulk_uniforms`
        (numpy MT19937 fast path with an exact scalar fallback) and the CDF
        inversion from ``np.searchsorted``, which computes exactly
        ``bisect_left`` — so the rank stream, and the generator state left
        behind, are the same whether numpy is installed or not.
        """
        if count <= 0:
            return []
        uniforms = vectorized.bulk_uniforms(self._rng, count)
        if isinstance(uniforms, list):
            return [bisect.bisect_left(self._cdf, u) for u in uniforms]
        if self._cdf_array is None:
            self._cdf_array = vectorized.np.asarray(self._cdf)
        return vectorized.bulk_bisect_left(self._cdf, uniforms, self._cdf_array)

    def sample_many(self, count: int, distinct: bool = False) -> List[int]:
        """Draw ``count`` ranks, optionally forcing them to be distinct."""
        if not distinct:
            return [self.sample() for _ in range(count)]
        if count > self.population:
            raise WorkloadError("cannot draw more distinct values than the population")
        seen: set[int] = set()
        result: List[int] = []
        # Rejection sampling; falls back to scanning when the key space is tight.
        attempts = 0
        while len(result) < count:
            value = self.sample()
            attempts += 1
            if value not in seen:
                seen.add(value)
                result.append(value)
            if attempts > 50 * count:
                for value in range(self.population):
                    if value not in seen:
                        seen.add(value)
                        result.append(value)
                        if len(result) == count:
                            break
        return result
