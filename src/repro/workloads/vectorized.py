"""Bit-exact numpy acceleration for the workload generators' RNG hot path.

The scalar workload path draws uniforms one at a time from a
``random.Random``.  CPython's ``random.Random`` and numpy's legacy
``RandomState`` share the same core generator (MT19937) *and* the same
53-bit double construction (``(a >> 5) * 2**26 + (b >> 6)) / 2**53`` from two
consecutive 32-bit outputs), so a block of ``n`` uniforms drawn through
numpy from a transplanted state is **bit-identical** to ``n`` scalar
``rng.random()`` calls — and leaves the generator in the identical state.

:func:`bulk_uniforms` implements that state transplant:

1. ``random.Random.getstate()`` exposes ``(version, key[624] + (pos,),
   gauss_next)``; the 624-word key and the position are exactly the MT19937
   state ``RandomState.set_state`` accepts.
2. ``RandomState.random_sample(n)`` consumes ``2n`` 32-bit outputs, the same
   words in the same order as ``n`` scalar ``random()`` calls.
3. The advanced state is written back with ``setstate``, so scalar and
   vectorized draws can interleave freely on one generator.

When numpy is missing (it is an optional accelerator, never a dependency)
or the block is too small to amortise the transplant, the scalar loop runs
instead — producing, by construction, the same values.  Callers therefore
never need to know which path executed.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Union

try:  # numpy is optional: everything here has an exact scalar fallback
    import numpy as np
except ImportError:  # pragma: no cover - exercised by forcing np to None in tests
    np = None  # type: ignore[assignment]

#: Blocks smaller than this run the scalar loop: two state conversions cost
#: more than a few dozen vectorized draws save.
MIN_VECTOR_DRAWS = 32


def numpy_available() -> bool:
    """Whether the numpy fast path is active (tests force it off)."""
    return np is not None


def bulk_uniforms(rng: random.Random, count: int) -> Union[List[float], "np.ndarray"]:
    """Draw ``count`` U[0,1) doubles, bit-identical to ``count`` ``rng.random()`` calls.

    Advances ``rng`` exactly as the scalar loop would, so subsequent draws
    (scalar or bulk) continue the same stream.  Returns a numpy array on the
    fast path and a plain list on the scalar fallback.
    """
    if np is None or count < MIN_VECTOR_DRAWS:
        return [rng.random() for _ in range(count)]
    version, internal, gauss_next = rng.getstate()
    key, pos = internal[:624], internal[624]
    # detlint: disable=DET002 -- constructor state is discarded: set_state() transplants the seeded caller rng's Mersenne Twister state on the next line
    state = np.random.RandomState()
    state.set_state(("MT19937", np.asarray(key, dtype=np.uint32), int(pos)))
    draws = state.random_sample(count)
    _, new_key, new_pos = state.get_state()[:3]
    rng.setstate((version,
                  tuple(int(word) for word in new_key) + (int(new_pos),),
                  gauss_next))
    return draws


def bulk_bisect_left(cdf: Sequence[float], values: Union[List[float], "np.ndarray"],
                     cdf_array: "np.ndarray" = None) -> List[int]:
    """``[bisect_left(cdf, v) for v in values]`` via ``np.searchsorted`` when possible.

    ``np.searchsorted(cdf, v, side="left")`` computes exactly
    ``bisect.bisect_left(cdf, v)``, so the two paths agree element-for-element.
    ``cdf_array`` lets callers pass a pre-converted array for reuse.
    """
    if np is None or isinstance(values, list):
        import bisect

        return [bisect.bisect_left(cdf, value) for value in values]
    if cdf_array is None:
        cdf_array = np.asarray(cdf)
    return np.searchsorted(cdf_array, values, side="left").tolist()
