"""Workloads: the BLOCKBENCH benchmarks the paper evaluates with.

* :mod:`repro.workloads.kvstore` — the KVStore (YCSB-style) benchmark; the
  multi-shard variant issues 3 updates per transaction as in Section 7.
* :mod:`repro.workloads.smallbank` — the Smallbank benchmark, with the
  ``sendPayment`` chaincode refactored into ``preparePayment`` /
  ``commitPayment`` / ``abortPayment`` exactly as Section 6.3 describes.
* :mod:`repro.workloads.zipf` — Zipf-skewed key selection (the contention
  knob of Figure 13 right).
* :mod:`repro.workloads.generator` — transaction stream generators that mix
  single-shard and cross-shard transactions.
"""

from repro.workloads.zipf import ZipfGenerator
from repro.workloads.kvstore import KVStoreChaincode, KVStoreWorkload
from repro.workloads.smallbank import SmallbankChaincode, SmallbankWorkload, initial_balances
from repro.workloads.generator import WorkloadGenerator, WorkloadMix

__all__ = [
    "ZipfGenerator",
    "KVStoreChaincode",
    "KVStoreWorkload",
    "SmallbankChaincode",
    "SmallbankWorkload",
    "initial_balances",
    "WorkloadGenerator",
    "WorkloadMix",
]
