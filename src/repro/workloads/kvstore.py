"""The KVStore (YCSB-style) benchmark from BLOCKBENCH.

Single-shard experiments use simple put/get transactions; the multi-shard
experiments modify the driver to issue **3 updates per transaction**
(Section 7), which makes most transactions cross-shard.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ChaincodeError, WorkloadError
from repro.ledger.chaincode import Chaincode
from repro.ledger.state import StateStore
from repro.ledger.transaction import Transaction
from repro.workloads.zipf import ZipfGenerator


class KVStoreChaincode(Chaincode):
    """Key-value chaincode: ``put``, ``get``, ``update`` and multi-key ``multi_put``.

    The sharded variant splits every write function into the prepare /
    commit / abort form used by the coordination protocol; the lock key for a
    state key ``k`` is ``"L_" + k``, exactly as described in Section 6.3.
    """

    name = "kvstore"

    def invoke(self, state: StateStore, function: str, args: Dict[str, Any]) -> Any:
        if function == "put":
            return self._put(state, args)
        if function == "get":
            return state.get(self._key(args))
        if function == "update":
            return self._put(state, args)
        if function == "multi_put":
            return self._multi_put(state, args)
        if function == "prepare_multi_put":
            return self._prepare_multi_put(state, args)
        if function == "commit_multi_put":
            return self._commit_multi_put(state, args)
        if function == "abort_multi_put":
            return self._abort_multi_put(state, args)
        raise ChaincodeError(f"kvstore has no function {function!r}")

    @staticmethod
    def _key(args: Dict[str, Any]) -> str:
        try:
            return str(args["key"])
        except KeyError as exc:
            raise ChaincodeError("missing 'key' argument") from exc

    def _put(self, state: StateStore, args: Dict[str, Any]) -> Dict[str, Any]:
        key = self._key(args)
        state.put(key, args.get("value"))
        return {"written": key}

    @staticmethod
    def _pairs(args: Dict[str, Any]) -> List[Tuple[str, Any]]:
        writes = args.get("writes")
        if not writes:
            raise ChaincodeError("missing 'writes' argument")
        return [(str(key), value) for key, value in writes]

    def _multi_put(self, state: StateStore, args: Dict[str, Any]) -> Dict[str, Any]:
        pairs = self._pairs(args)
        for key, value in pairs:
            state.put(key, value)
        return {"written": [key for key, _ in pairs]}

    # -------------------------------------------------- sharded (2PC) variant
    def _prepare_multi_put(self, state: StateStore, args: Dict[str, Any]) -> Dict[str, Any]:
        pairs = self._pairs(args)
        tx_id = args.get("tx_id", "")
        for key, _ in pairs:
            lock_key = f"L_{key}"
            holder = state.get(lock_key)
            if holder is not None and holder != tx_id:
                raise ChaincodeError(f"key {key!r} is locked by {holder!r}")
        for key, _ in pairs:
            state.put(f"L_{key}", tx_id)
        return {"prepared": [key for key, _ in pairs]}

    def _commit_multi_put(self, state: StateStore, args: Dict[str, Any]) -> Dict[str, Any]:
        """Phase 2 (commit): apply the prepared writes and release the locks.

        A write is applied only while this transaction's prepare lock is
        still held, making CommitTx **idempotent**: a re-driven decision
        (the coordinator retries when a Byzantine first-contact member
        swallows the original and the ack never arrives) may be delivered
        twice, and the duplicate must neither resurrect a stale value over a
        later transaction's write nor strip that transaction's lock.
        """
        pairs = self._pairs(args)
        tx_id = args.get("tx_id", "")
        committed = []
        for key, value in pairs:
            lock_key = f"L_{key}"
            if state.get(lock_key) != tx_id:
                continue  # never prepared here, or already committed/aborted
            state.put(key, value)
            state.delete(lock_key)
            committed.append(key)
        return {"committed": committed}

    def _abort_multi_put(self, state: StateStore, args: Dict[str, Any]) -> Dict[str, Any]:
        pairs = self._pairs(args)
        tx_id = args.get("tx_id", "")
        for key, _ in pairs:
            lock_key = f"L_{key}"
            if state.get(lock_key) == tx_id:
                state.delete(lock_key)
        return {"aborted": [key for key, _ in pairs]}

    def keys_touched(self, function: str, args: Dict[str, Any]) -> Tuple[str, ...]:
        if "writes" in args:
            return tuple(str(key) for key, _ in args["writes"])
        if "key" in args:
            return (str(args["key"]),)
        return ()


class KVStoreWorkload:
    """Transaction generator for the KVStore benchmark.

    Parameters
    ----------
    num_keys:
        Size of the key space.
    updates_per_transaction:
        1 for the single-shard benchmark, 3 for the cross-shard variant
        (Section 7's modified driver).
    zipf_coefficient:
        Key-popularity skew.
    """

    def __init__(self, num_keys: int = 100_000, updates_per_transaction: int = 1,
                 zipf_coefficient: float = 0.0, value_bytes: int = 64,
                 seed: int = 0) -> None:
        if num_keys < 1 or updates_per_transaction < 1:
            raise WorkloadError("num_keys and updates_per_transaction must be positive")
        self.chaincode = KVStoreChaincode()
        self.num_keys = num_keys
        self.updates_per_transaction = updates_per_transaction
        self.value_bytes = value_bytes
        self._rng = random.Random(seed)
        self._zipf = ZipfGenerator(num_keys, zipf_coefficient, rng=self._rng)

    def key_name(self, index: int) -> str:
        return f"kv_{index}"

    def next_transaction(self, client_id: str = "client", now: float = 0.0) -> Transaction:
        """A single transaction updating ``updates_per_transaction`` distinct keys."""
        indices = self._zipf.sample_many(self.updates_per_transaction, distinct=True)
        value = "x" * self.value_bytes
        if self.updates_per_transaction == 1:
            args: Dict[str, Any] = {"key": self.key_name(indices[0]), "value": value}
            function = "put"
        else:
            args = {"writes": [(self.key_name(i), value) for i in indices]}
            function = "multi_put"
        return self.chaincode.new_transaction(function, args, client_id=client_id,
                                              submitted_at=now)

    def batch(self, count: int, client_id: str = "client", now: float = 0.0) -> List[Transaction]:
        return [self.next_transaction(client_id, now) for _ in range(count)]

    def tx_factory(self):
        """Adapter matching the client-driver ``tx_factory`` signature."""
        def factory(client_id: str, now: float, rng, count: int) -> List[Transaction]:
            return self.batch(count, client_id=client_id, now=now)
        return factory

    def populate(self, state: StateStore, count: Optional[int] = None) -> None:
        """Pre-load the key space (as BLOCKBENCH does before measuring)."""
        total = count if count is not None else min(self.num_keys, 10_000)
        for index in range(total):
            state.put(self.key_name(index), "0" * self.value_bytes)
