"""Workload mixes for the sharded system experiments.

The sharded experiments need a stream of transactions with a controlled mix
of single-shard and cross-shard operations (and Appendix B tells us the
cross-shard fraction implied by uniformly hashed keys).  The generator here
produces such a stream for either benchmark and reports the realised mix.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import WorkloadError
from repro.ledger.transaction import Transaction
from repro.workloads.kvstore import KVStoreWorkload
from repro.workloads.smallbank import SmallbankWorkload


def shard_of_key(key: str, num_shards: int) -> int:
    """Deterministic key-to-shard mapping (hash partitioning)."""
    if num_shards < 1:
        raise WorkloadError("num_shards must be at least 1")
    import hashlib
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


@dataclass
class WorkloadMix:
    """Realised statistics of a generated transaction stream."""

    total: int = 0
    cross_shard: int = 0
    shards_touched: Dict[int, int] = field(default_factory=dict)

    @property
    def cross_shard_fraction(self) -> float:
        return self.cross_shard / self.total if self.total else 0.0

    def record(self, shards: Sequence[int]) -> None:
        self.total += 1
        distinct = len(set(shards))
        self.shards_touched[distinct] = self.shards_touched.get(distinct, 0) + 1
        if distinct > 1:
            self.cross_shard += 1


class WorkloadGenerator:
    """Generates a transaction stream for an ``num_shards``-shard deployment.

    Parameters
    ----------
    benchmark:
        "kvstore" (3 updates per transaction, as in Section 7) or "smallbank"
        (sendPayment reading and writing two accounts).
    num_shards:
        Used only to report the realised cross-shard mix; routing itself is
        done by the sharded system from the transaction's keys.
    """

    def __init__(self, benchmark: str = "smallbank", num_shards: int = 2,
                 zipf_coefficient: float = 0.0, num_keys: int = 10_000,
                 seed: int = 0) -> None:
        self.benchmark = benchmark
        self.num_shards = num_shards
        self.mix = WorkloadMix()
        self._rng = random.Random(seed)
        if benchmark == "kvstore":
            self._workload = KVStoreWorkload(
                num_keys=num_keys, updates_per_transaction=3,
                zipf_coefficient=zipf_coefficient, seed=seed,
            )
        elif benchmark == "smallbank":
            self._workload = SmallbankWorkload(
                num_accounts=num_keys, zipf_coefficient=zipf_coefficient, seed=seed,
            )
        else:
            raise WorkloadError(f"unknown benchmark {benchmark!r}")

    @property
    def chaincode(self):
        return self._workload.chaincode

    def populate(self, state) -> None:
        self._workload.populate(state)

    def next_transaction(self, client_id: str = "client", now: float = 0.0) -> Transaction:
        tx = self._workload.next_transaction(client_id=client_id, now=now)
        shards = [shard_of_key(key, self.num_shards) for key in tx.keys]
        self.mix.record(shards)
        return tx

    def batch(self, count: int, client_id: str = "client", now: float = 0.0) -> List[Transaction]:
        return [self.next_transaction(client_id, now) for _ in range(count)]

    def tx_factory(self) -> Callable:
        """Adapter matching the client-driver ``tx_factory`` signature."""
        def factory(client_id: str, now: float, rng, count: int) -> List[Transaction]:
            return self.batch(count, client_id=client_id, now=now)
        return factory
