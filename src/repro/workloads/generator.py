"""Workload mixes for the sharded system experiments.

The sharded experiments need a stream of transactions with a controlled mix
of single-shard and cross-shard operations (and Appendix B tells us the
cross-shard fraction implied by uniformly hashed keys).  The generator here
produces such a stream for either benchmark and reports the realised mix.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.errors import WorkloadError
from repro.ledger.transaction import Transaction
from repro.workloads.kvstore import KVStoreWorkload
from repro.workloads.smallbank import SmallbankWorkload


@lru_cache(maxsize=262144)
def shard_of_key(key: str, num_shards: int) -> int:
    """Deterministic key-to-shard mapping (hash partitioning).

    Benchmark key spaces are small relative to the transaction count, so the
    SHA-256 routing hash is memoized: a 100k-transaction run re-routes the
    same few thousand keys over and over.
    """
    if num_shards < 1:
        raise WorkloadError("num_shards must be at least 1")
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


@dataclass
class WorkloadMix:
    """Realised statistics of a generated transaction stream."""

    total: int = 0
    cross_shard: int = 0
    shards_touched: Dict[int, int] = field(default_factory=dict)

    @property
    def cross_shard_fraction(self) -> float:
        return self.cross_shard / self.total if self.total else 0.0

    def record(self, shards: Sequence[int]) -> None:
        self.total += 1
        distinct = len(set(shards))
        self.shards_touched[distinct] = self.shards_touched.get(distinct, 0) + 1
        if distinct > 1:
            self.cross_shard += 1


class WorkloadGenerator:
    """Generates a transaction stream for an ``num_shards``-shard deployment.

    Parameters
    ----------
    benchmark:
        "kvstore" (3 updates per transaction, as in Section 7) or "smallbank"
        (sendPayment reading and writing two accounts).
    num_shards:
        Used only to report the realised cross-shard mix; routing itself is
        done by the sharded system from the transaction's keys.
    """

    def __init__(self, benchmark: str = "smallbank", num_shards: int = 2,
                 zipf_coefficient: float = 0.0, num_keys: int = 10_000,
                 seed: int = 0, vectorized: bool = False,
                 vector_batch: int = 256) -> None:
        self.benchmark = benchmark
        self.num_shards = num_shards
        #: Construction parameters, kept introspectable so a generator can be
        #: described by a plain spec and re-derived elsewhere (the scale-out
        #: engine rebuilds per-partition streams from these inside workers).
        self.zipf_coefficient = zipf_coefficient
        self.num_keys = num_keys
        self.seed = seed
        self.mix = WorkloadMix()
        self._rng = random.Random(seed)
        if vectorized and benchmark != "smallbank":
            raise WorkloadError(
                "vectorized generation currently supports only the smallbank "
                "benchmark (kvstore's distinct-key rejection sampling is "
                "inherently data-dependent)")
        if vector_batch < 1:
            raise WorkloadError("vector_batch must be at least 1")
        #: Opt-in batched sampling: account pairs and amounts are pre-sampled
        #: ``vector_batch`` transactions at a time in the workload's *block
        #: layout* (numpy-accelerated when available, bit-identical scalar
        #: fallback otherwise), while transactions are still materialised one
        #: at a time with the caller's fresh ``now``/``client_id`` — so the
        #: existing stream/next_transaction interface is unchanged.  The
        #: block layout is a different (equally deterministic) stream than
        #: the scalar per-transaction path — and since ranks and amounts
        #: share one RNG, ``vector_batch`` is part of the stream definition
        #: (same seed + same batch size ⇒ same stream) — which is why it is
        #: opt-in.
        self.vectorized = vectorized
        self.vector_batch = vector_batch
        self._payment_buffer: List[tuple] = []
        self._buffer_pos = 0
        if benchmark == "kvstore":
            self._workload = KVStoreWorkload(
                num_keys=num_keys, updates_per_transaction=3,
                zipf_coefficient=zipf_coefficient, seed=seed,
            )
        elif benchmark == "smallbank":
            self._workload = SmallbankWorkload(
                num_accounts=num_keys, zipf_coefficient=zipf_coefficient, seed=seed,
            )
        else:
            raise WorkloadError(f"unknown benchmark {benchmark!r}")

    @property
    def chaincode(self):
        return self._workload.chaincode

    def populate(self, state) -> None:
        self._workload.populate(state)

    def next_transaction(self, client_id: str = "client", now: float = 0.0) -> Transaction:
        if self.vectorized:
            tx = self._next_vectorized(client_id, now)
        else:
            tx = self._workload.next_transaction(client_id=client_id, now=now)
        shards = [shard_of_key(key, self.num_shards) for key in tx.keys]
        self.mix.record(shards)
        return tx

    def next_transaction_for_shard(self, shard_id: int, client_id: str = "client",
                                   now: float = 0.0) -> Transaction:
        """Next transaction from this stream whose *first key* lives on ``shard_id``.

        The scale-out engine gives every partition its own generator (seeded
        by a per-partition split) and a deterministic ownership rule: a
        partition drives exactly the draws whose first key — the payer's
        account for Smallbank — it owns, and skips the rest.  Because the
        rule is a pure function of the draw and the partition id, the union
        of all partitions' accepted streams is independent of worker count.

        On the vectorized path ownership is tested on the pre-sampled
        ``(source, destination, amount)`` tuple *before* materialising a
        Transaction, so skipped draws burn no transaction ids; the scalar
        path materialises first (ids come from the partition's own disjoint
        counter, so the burn is deterministic per partition too).
        """
        for _ in range(10_000_000):
            if self.vectorized:
                if self._buffer_pos >= len(self._payment_buffer):
                    self._payment_buffer = self._workload.sample_payments(self.vector_batch)
                    self._buffer_pos = 0
                source, destination, amount = self._payment_buffer[self._buffer_pos]
                self._buffer_pos += 1
                from repro.workloads.smallbank import account_key

                if shard_of_key(account_key(str(source)), self.num_shards) != shard_id:
                    continue
                args = {"from": source, "to": destination, "amount": amount}
                tx = self._workload.chaincode.new_transaction(
                    "sendPayment", args, client_id=client_id, submitted_at=now)
            else:
                tx = self._workload.next_transaction(client_id=client_id, now=now)
                if shard_of_key(tx.keys[0], self.num_shards) != shard_id:
                    continue
            self.mix.record([shard_of_key(key, self.num_shards) for key in tx.keys])
            return tx
        raise WorkloadError(
            f"shard {shard_id} owns no sampled first keys: 10M consecutive "
            f"draws were all foreign (num_keys={self.num_keys} is likely far "
            f"too small for {self.num_shards} shards)")

    def _next_vectorized(self, client_id: str, now: float) -> Transaction:
        """Pop one pre-sampled payment; refill the block buffer when empty."""
        if self._buffer_pos >= len(self._payment_buffer):
            self._payment_buffer = self._workload.sample_payments(self.vector_batch)
            self._buffer_pos = 0
        source, destination, amount = self._payment_buffer[self._buffer_pos]
        self._buffer_pos += 1
        args = {"from": source, "to": destination, "amount": amount}
        return self._workload.chaincode.new_transaction(
            "sendPayment", args, client_id=client_id, submitted_at=now)

    def batch(self, count: int, client_id: str = "client", now: float = 0.0) -> List[Transaction]:
        """Materialise ``count`` transactions at once.

        Prefer :meth:`stream` (or repeated :meth:`next_transaction` calls)
        for long runs: eager batches hold the whole run's transactions in
        memory, which is exactly what the streaming open-loop driver avoids.
        """
        return [self.next_transaction(client_id, now) for _ in range(count)]

    def stream(self, count: Optional[int] = None, client_id: str = "client",
               now: float = 0.0) -> Iterator[Transaction]:
        """Convenience iterator over :meth:`next_transaction`.

        Lazily yields ``count`` transactions (forever when ``count`` is
        None) from the same seeded RNG, so ``list(g.stream(n))`` equals
        ``g.batch(n)`` for a fresh generator — but one transaction exists at
        a time.  Note the simulation driver calls :meth:`next_transaction`
        directly (it needs a fresh ``now`` per arrival); this iterator is
        for library users generating streams outside a simulation.
        """
        produced = 0
        while count is None or produced < count:
            yield self.next_transaction(client_id, now)
            produced += 1

    def tx_factory(self) -> Callable:
        """Adapter matching the client-driver ``tx_factory`` signature."""
        def factory(client_id: str, now: float, rng, count: int) -> List[Transaction]:
            return self.batch(count, client_id=client_id, now=now)
        return factory
