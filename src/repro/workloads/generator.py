"""Workload mixes for the sharded system experiments.

The sharded experiments need a stream of transactions with a controlled mix
of single-shard and cross-shard operations (and Appendix B tells us the
cross-shard fraction implied by uniformly hashed keys).  The generator here
produces such a stream for either benchmark and reports the realised mix.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, TextIO

from repro.errors import WorkloadError
from repro.ledger.transaction import Transaction
from repro.workloads.kvstore import KVStoreWorkload
from repro.workloads.smallbank import SmallbankWorkload


@lru_cache(maxsize=262144)
def shard_of_key(key: str, num_shards: int) -> int:
    """Deterministic key-to-shard mapping (hash partitioning).

    Benchmark key spaces are small relative to the transaction count, so the
    SHA-256 routing hash is memoized: a 100k-transaction run re-routes the
    same few thousand keys over and over.
    """
    if num_shards < 1:
        raise WorkloadError("num_shards must be at least 1")
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


@dataclass
class WorkloadMix:
    """Realised statistics of a generated transaction stream."""

    total: int = 0
    cross_shard: int = 0
    shards_touched: Dict[int, int] = field(default_factory=dict)

    @property
    def cross_shard_fraction(self) -> float:
        return self.cross_shard / self.total if self.total else 0.0

    def record(self, shards: Sequence[int]) -> None:
        self.total += 1
        distinct = len(set(shards))
        self.shards_touched[distinct] = self.shards_touched.get(distinct, 0) + 1
        if distinct > 1:
            self.cross_shard += 1


class WorkloadGenerator:
    """Generates a transaction stream for an ``num_shards``-shard deployment.

    Parameters
    ----------
    benchmark:
        "kvstore" (3 updates per transaction, as in Section 7) or "smallbank"
        (sendPayment reading and writing two accounts).
    num_shards:
        Used only to report the realised cross-shard mix; routing itself is
        done by the sharded system from the transaction's keys.
    """

    def __init__(self, benchmark: str = "smallbank", num_shards: int = 2,
                 zipf_coefficient: float = 0.0, num_keys: int = 10_000,
                 seed: int = 0, vectorized: bool = False,
                 vector_batch: int = 256) -> None:
        self.benchmark = benchmark
        self.num_shards = num_shards
        #: Construction parameters, kept introspectable so a generator can be
        #: described by a plain spec and re-derived elsewhere (the scale-out
        #: engine rebuilds per-partition streams from these inside workers).
        self.zipf_coefficient = zipf_coefficient
        self.num_keys = num_keys
        self.seed = seed
        self.mix = WorkloadMix()
        self._rng = random.Random(seed)
        if vectorized and benchmark != "smallbank":
            raise WorkloadError(
                "vectorized generation currently supports only the smallbank "
                "benchmark (kvstore's distinct-key rejection sampling is "
                "inherently data-dependent)")
        if vector_batch < 1:
            raise WorkloadError("vector_batch must be at least 1")
        #: Opt-in batched sampling: account pairs and amounts are pre-sampled
        #: ``vector_batch`` transactions at a time in the workload's *block
        #: layout* (numpy-accelerated when available, bit-identical scalar
        #: fallback otherwise), while transactions are still materialised one
        #: at a time with the caller's fresh ``now``/``client_id`` — so the
        #: existing stream/next_transaction interface is unchanged.  The
        #: block layout is a different (equally deterministic) stream than
        #: the scalar per-transaction path — and since ranks and amounts
        #: share one RNG, ``vector_batch`` is part of the stream definition
        #: (same seed + same batch size ⇒ same stream) — which is why it is
        #: opt-in.
        self.vectorized = vectorized
        self.vector_batch = vector_batch
        self._payment_buffer: List[tuple] = []
        self._buffer_pos = 0
        self._record_fh: Optional[TextIO] = None
        self._record_seq = 0
        if benchmark == "kvstore":
            self._workload = KVStoreWorkload(
                num_keys=num_keys, updates_per_transaction=3,
                zipf_coefficient=zipf_coefficient, seed=seed,
            )
        elif benchmark == "smallbank":
            self._workload = SmallbankWorkload(
                num_accounts=num_keys, zipf_coefficient=zipf_coefficient, seed=seed,
            )
        else:
            raise WorkloadError(f"unknown benchmark {benchmark!r}")

    @property
    def chaincode(self):
        return self._workload.chaincode

    def populate(self, state) -> None:
        self._workload.populate(state)

    def next_transaction(self, client_id: str = "client", now: float = 0.0) -> Transaction:
        if self.vectorized:
            tx = self._next_vectorized(client_id, now)
        else:
            tx = self._workload.next_transaction(client_id=client_id, now=now)
        shards = [shard_of_key(key, self.num_shards) for key in tx.keys]
        self.mix.record(shards)
        if self._record_fh is not None:
            self._record_fh.write(json.dumps({
                "seq": self._record_seq, "function": tx.function,
                "args": tx.args, "client_id": tx.client_id,
            }, sort_keys=True) + "\n")
            self._record_seq += 1
        return tx

    # -------------------------------------------------------- record / replay
    def start_recording(self, path: str) -> None:
        """Log every subsequent :meth:`next_transaction` draw to ``path``.

        The file is JSON-lines: a header row with the generator's spec
        (benchmark, shard count, key space, seed) followed by one
        ``{seq, function, args, client_id}`` row per transaction.  Entries
        capture the chaincode *invocation*, not the materialised
        ``Transaction`` — tx ids come from a process-global counter, so a
        replay mints fresh ids but performs the identical state transitions.
        This is the bridge of the sim-vs-service differential oracle: the
        exact stream a simulated run consumed can be re-submitted through the
        HTTP gateway (see :meth:`replay` and ``repro.service.client``).
        """
        if self._record_fh is not None:
            raise WorkloadError("already recording")
        self._record_fh = open(path, "w", encoding="utf-8")
        self._record_seq = 0
        self._record_fh.write(json.dumps({
            "benchmark": self.benchmark, "num_shards": self.num_shards,
            "num_keys": self.num_keys, "seed": self.seed,
            "zipf_coefficient": self.zipf_coefficient,
        }, sort_keys=True) + "\n")

    def stop_recording(self) -> int:
        """Close the recording file; returns the number of entries written."""
        if self._record_fh is None:
            raise WorkloadError("not recording")
        self._record_fh.close()
        self._record_fh = None
        return self._record_seq

    @classmethod
    def replay(cls, path: str) -> "WorkloadReplay":
        """Load a stream recorded by :meth:`start_recording` for re-submission."""
        return WorkloadReplay(path)

    def next_transaction_for_shard(self, shard_id: int, client_id: str = "client",
                                   now: float = 0.0) -> Transaction:
        """Next transaction from this stream whose *first key* lives on ``shard_id``.

        The scale-out engine gives every partition its own generator (seeded
        by a per-partition split) and a deterministic ownership rule: a
        partition drives exactly the draws whose first key — the payer's
        account for Smallbank — it owns, and skips the rest.  Because the
        rule is a pure function of the draw and the partition id, the union
        of all partitions' accepted streams is independent of worker count.

        On the vectorized path ownership is tested on the pre-sampled
        ``(source, destination, amount)`` tuple *before* materialising a
        Transaction, so skipped draws burn no transaction ids; the scalar
        path materialises first (ids come from the partition's own disjoint
        counter, so the burn is deterministic per partition too).
        """
        for _ in range(10_000_000):
            if self.vectorized:
                if self._buffer_pos >= len(self._payment_buffer):
                    self._payment_buffer = self._workload.sample_payments(self.vector_batch)
                    self._buffer_pos = 0
                source, destination, amount = self._payment_buffer[self._buffer_pos]
                self._buffer_pos += 1
                from repro.workloads.smallbank import account_key

                if shard_of_key(account_key(str(source)), self.num_shards) != shard_id:
                    continue
                args = {"from": source, "to": destination, "amount": amount}
                tx = self._workload.chaincode.new_transaction(
                    "sendPayment", args, client_id=client_id, submitted_at=now)
            else:
                tx = self._workload.next_transaction(client_id=client_id, now=now)
                if shard_of_key(tx.keys[0], self.num_shards) != shard_id:
                    continue
            self.mix.record([shard_of_key(key, self.num_shards) for key in tx.keys])
            return tx
        raise WorkloadError(
            f"shard {shard_id} owns no sampled first keys: 10M consecutive "
            f"draws were all foreign (num_keys={self.num_keys} is likely far "
            f"too small for {self.num_shards} shards)")

    def _next_vectorized(self, client_id: str, now: float) -> Transaction:
        """Pop one pre-sampled payment; refill the block buffer when empty."""
        if self._buffer_pos >= len(self._payment_buffer):
            self._payment_buffer = self._workload.sample_payments(self.vector_batch)
            self._buffer_pos = 0
        source, destination, amount = self._payment_buffer[self._buffer_pos]
        self._buffer_pos += 1
        args = {"from": source, "to": destination, "amount": amount}
        return self._workload.chaincode.new_transaction(
            "sendPayment", args, client_id=client_id, submitted_at=now)

    def batch(self, count: int, client_id: str = "client", now: float = 0.0) -> List[Transaction]:
        """Materialise ``count`` transactions at once.

        Prefer :meth:`stream` (or repeated :meth:`next_transaction` calls)
        for long runs: eager batches hold the whole run's transactions in
        memory, which is exactly what the streaming open-loop driver avoids.
        """
        return [self.next_transaction(client_id, now) for _ in range(count)]

    def stream(self, count: Optional[int] = None, client_id: str = "client",
               now: float = 0.0) -> Iterator[Transaction]:
        """Convenience iterator over :meth:`next_transaction`.

        Lazily yields ``count`` transactions (forever when ``count`` is
        None) from the same seeded RNG, so ``list(g.stream(n))`` equals
        ``g.batch(n)`` for a fresh generator — but one transaction exists at
        a time.  Note the simulation driver calls :meth:`next_transaction`
        directly (it needs a fresh ``now`` per arrival); this iterator is
        for library users generating streams outside a simulation.
        """
        produced = 0
        while count is None or produced < count:
            yield self.next_transaction(client_id, now)
            produced += 1

    def tx_factory(self) -> Callable:
        """Adapter matching the client-driver ``tx_factory`` signature."""
        def factory(client_id: str, now: float, rng, count: int) -> List[Transaction]:
            return self.batch(count, client_id=client_id, now=now)
        return factory


class WorkloadReplay:
    """A recorded transaction stream, re-playable in any runtime.

    Built by :meth:`WorkloadGenerator.replay`.  ``entries`` holds the raw
    ``{seq, function, args, client_id}`` rows (what an HTTP client POSTs to
    the gateway); :meth:`next_transaction` re-materialises them through the
    benchmark's chaincode for in-process submission, preserving the
    :class:`WorkloadGenerator` interface (``populate``, ``chaincode``,
    ``stream``) so a replay can stand in for a live generator.
    """

    def __init__(self, path: str) -> None:
        with open(path, "r", encoding="utf-8") as fh:
            lines = [line for line in fh if line.strip()]
        if not lines:
            raise WorkloadError(f"empty workload recording {path!r}")
        header = json.loads(lines[0])
        for field_name in ("benchmark", "num_shards", "num_keys", "seed"):
            if field_name not in header:
                raise WorkloadError(f"recording {path!r} is missing header field "
                                    f"{field_name!r}")
        self.benchmark: str = header["benchmark"]
        self.num_shards: int = header["num_shards"]
        self.num_keys: int = header["num_keys"]
        self.seed: int = header["seed"]
        self.zipf_coefficient: float = header.get("zipf_coefficient", 0.0)
        self.entries: List[Dict[str, Any]] = [json.loads(line) for line in lines[1:]]
        self._cursor = 0
        self.mix = WorkloadMix()
        # The same underlying workload the recording generator used, rebuilt
        # from the header spec — needed for populate() (initial balances) and
        # the chaincode that re-materialises entries.
        self._source = WorkloadGenerator(
            benchmark=self.benchmark, num_shards=self.num_shards,
            zipf_coefficient=self.zipf_coefficient, num_keys=self.num_keys,
            seed=self.seed)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def chaincode(self):
        return self._source.chaincode

    def populate(self, state) -> None:
        self._source.populate(state)

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.entries)

    def rewind(self) -> None:
        self._cursor = 0

    def next_transaction(self, client_id: Optional[str] = None,
                         now: float = 0.0) -> Transaction:
        """Materialise the next recorded entry (fresh tx id, identical effect)."""
        if self.exhausted:
            raise WorkloadError("replay exhausted")
        entry = self.entries[self._cursor]
        self._cursor += 1
        tx = self.chaincode.new_transaction(
            entry["function"], entry["args"],
            client_id=client_id if client_id is not None else entry["client_id"],
            submitted_at=now)
        self.mix.record([shard_of_key(key, self.num_shards) for key in tx.keys])
        return tx

    def stream(self, client_id: Optional[str] = None,
               now: float = 0.0) -> Iterator[Transaction]:
        while not self.exhausted:
            yield self.next_transaction(client_id=client_id, now=now)
