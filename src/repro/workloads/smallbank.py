"""The Smallbank benchmark (Section 6.3 and Section 7).

Smallbank models a simple banking application.  The paper's multi-shard
experiments use the ``sendPayment`` transaction, which reads and writes two
different accounts, and refactor its chaincode into three functions —
``preparePayment``, ``commitPayment`` and ``abortPayment`` — so it can run
under the 2PC/2PL coordination protocol.  Locking is implemented by writing a
boolean to the blockchain state under the key ``"L_" + account``.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Tuple

from repro.errors import ChaincodeError, WorkloadError
from repro.ledger.chaincode import Chaincode
from repro.ledger.state import StateStore
from repro.ledger.transaction import Transaction
from repro.workloads.zipf import ZipfGenerator

#: Default initial balance of every account.
DEFAULT_BALANCE = 10_000


def account_key(account: str) -> str:
    return f"acc_{account}"


def lock_key(account: str) -> str:
    return f"L_{account_key(account)}"


def initial_balances(num_accounts: int, balance: int = DEFAULT_BALANCE) -> Dict[str, int]:
    """The initial account table loaded before the benchmark starts."""
    return {account_key(str(index)): balance for index in range(num_accounts)}


def receipt_deltas(tx: Transaction, receipt: Any) -> List[Tuple[str, int]]:
    """The exact per-account balance deltas one committed execution applied.

    This is the ledger index's materialization rule for Smallbank: given a
    transaction and its execution receipt, return the ``(state key, delta)``
    pairs :class:`SmallbankChaincode` applied — and *only* those.  The
    mirroring must be exact, delta for delta:

    * ``sendPayment`` debits ``from`` and credits ``to`` iff the receipt
      committed;
    * ``commitPayment`` applies a delta only while the account's prepare
      lock was still held — the receipt's ``committed`` list records exactly
      which accounts that was true for (and only an account's first delta in
      the list can have applied, since applying releases the lock);
    * ``deposit`` and ``createAccount`` mint money by design — their deltas
      are included here and reported separately by :func:`receipt_minted`,
      so conservation is ``sum(deltas) == sum(minted)``.  (``createAccount``
      over an existing account is treated as minting the full balance; the
      receipt does not carry the overwritten value.)

    Failed receipts applied nothing (the engine rolls back), so they
    contribute no deltas.
    """
    if receipt is None or not receipt.ok:
        return []
    args = tx.args
    if tx.function == "sendPayment":
        amount = int(args["amount"])
        return [(account_key(str(args["from"])), -amount),
                (account_key(str(args["to"])), amount)]
    if tx.function == "commitPayment":
        applied = {str(account) for account in (receipt.result or {}).get("committed", ())}
        deltas: List[Tuple[str, int]] = []
        seen: set = set()
        for account, delta in args.get("deltas", []):
            account = str(account)
            if account in applied and account not in seen:
                deltas.append((account_key(account), int(delta)))
            seen.add(account)
        return deltas
    if tx.function == "deposit":
        return [(account_key(str(args["account"])), int(args["amount"]))]
    if tx.function == "createAccount":
        return [(account_key(str(args["account"])),
                 int(args.get("balance", DEFAULT_BALANCE)))]
    return []


def receipt_minted(tx: Transaction, receipt: Any) -> int:
    """Money legitimately created by one committed execution.

    ``deposit`` and ``createAccount`` add balance out of thin air; every
    other Smallbank function conserves it.  The auditor's incremental money
    check subtracts this from the running delta sum, so a workload that uses
    deposits still audits clean while a lost or duplicated transfer still
    trips the invariant.
    """
    if receipt is None or not receipt.ok:
        return 0
    if tx.function == "deposit":
        return int(tx.args["amount"])
    if tx.function == "createAccount":
        return int(tx.args.get("balance", DEFAULT_BALANCE))
    return 0


class SmallbankChaincode(Chaincode):
    """The Smallbank chaincode, including the sharded (prepare/commit/abort) functions."""

    name = "smallbank"

    def invoke(self, state: StateStore, function: str, args: Dict[str, Any]) -> Any:
        handlers = {
            "createAccount": self._create_account,
            "query": self._query,
            "deposit": self._deposit,
            "sendPayment": self._send_payment,
            "preparePayment": self._prepare_payment,
            "commitPayment": self._commit_payment,
            "abortPayment": self._abort_payment,
        }
        handler = handlers.get(function)
        if handler is None:
            raise ChaincodeError(f"smallbank has no function {function!r}")
        return handler(state, args)

    # ------------------------------------------------------------ single-shard
    @staticmethod
    def _create_account(state: StateStore, args: Dict[str, Any]) -> Dict[str, Any]:
        account = str(args["account"])
        state.put(account_key(account), int(args.get("balance", DEFAULT_BALANCE)))
        return {"account": account}

    @staticmethod
    def _query(state: StateStore, args: Dict[str, Any]) -> Dict[str, Any]:
        account = str(args["account"])
        balance = state.get(account_key(account))
        if balance is None:
            raise ChaincodeError(f"unknown account {account!r}")
        return {"account": account, "balance": balance}

    @staticmethod
    def _deposit(state: StateStore, args: Dict[str, Any]) -> Dict[str, Any]:
        account = str(args["account"])
        amount = int(args["amount"])
        balance = state.get(account_key(account), 0)
        state.put(account_key(account), balance + amount)
        return {"account": account, "balance": balance + amount}

    @staticmethod
    def _send_payment(state: StateStore, args: Dict[str, Any]) -> Dict[str, Any]:
        """The original single-shard sendPayment: check funds, debit, credit."""
        source = str(args["from"])
        destination = str(args["to"])
        amount = int(args["amount"])
        source_balance = state.get(account_key(source))
        destination_balance = state.get(account_key(destination))
        if source_balance is None or destination_balance is None:
            raise ChaincodeError("unknown account in sendPayment")
        if source_balance < amount:
            raise ChaincodeError(f"insufficient funds in account {source!r}")
        state.put(account_key(source), source_balance - amount)
        state.put(account_key(destination), destination_balance + amount)
        return {"from": source, "to": destination, "amount": amount}

    # --------------------------------------------------------------- sharded
    @staticmethod
    def _prepare_payment(state: StateStore, args: Dict[str, Any]) -> Dict[str, Any]:
        """Phase 1: acquire locks on the locally owned accounts and check funds.

        ``accounts`` lists the accounts stored on this shard; ``debit`` names
        the account to be debited if it lives here.
        """
        tx_id = str(args.get("tx_id", ""))
        accounts = [str(acc) for acc in args.get("accounts", [])]
        amount = int(args.get("amount", 0))
        debit_account = args.get("debit")
        for account in accounts:
            if not state.exists(account_key(account)):
                raise ChaincodeError(f"unknown account {account!r}")
            holder = state.get(lock_key(account))
            if holder is not None and holder != tx_id:
                raise ChaincodeError(f"account {account!r} is locked by {holder!r}")
        if debit_account is not None and str(debit_account) in accounts:
            balance = state.get(account_key(str(debit_account)), 0)
            if balance < amount:
                raise ChaincodeError(f"insufficient funds in account {debit_account!r}")
        for account in accounts:
            state.put(lock_key(account), tx_id)
        return {"prepared": accounts, "tx_id": tx_id}

    @staticmethod
    def _commit_payment(state: StateStore, args: Dict[str, Any]) -> Dict[str, Any]:
        """Phase 2 (commit): apply balance deltas and release the locks.

        A delta is applied only while this transaction's prepare lock is
        still held — applying it is what releases the lock — so CommitTx is
        **idempotent**: a coordinator that re-drives a decision whose ack was
        lost (a Byzantine first-contact member can swallow the original) may
        deliver it twice, and the second delivery must not double-apply the
        transfer.  This is also the 2PL discipline proper: a shard can only
        commit what it prepared.
        """
        tx_id = str(args.get("tx_id", ""))
        deltas: List[Tuple[str, int]] = [
            (str(account), int(delta)) for account, delta in args.get("deltas", [])
        ]
        applied = []
        for account, delta in deltas:
            if state.get(lock_key(account)) != tx_id:
                continue  # never prepared here, or already committed/aborted
            balance = state.get(account_key(account), 0)
            state.put(account_key(account), balance + delta)
            state.delete(lock_key(account))
            applied.append(account)
        return {"committed": applied, "tx_id": tx_id}

    @staticmethod
    def _abort_payment(state: StateStore, args: Dict[str, Any]) -> Dict[str, Any]:
        """Phase 2 (abort): release any locks held by this transaction."""
        tx_id = str(args.get("tx_id", ""))
        accounts = [str(acc) for acc in args.get("accounts", [])]
        for account in accounts:
            if state.get(lock_key(account)) == tx_id:
                state.delete(lock_key(account))
        return {"aborted": accounts, "tx_id": tx_id}

    def keys_touched(self, function: str, args: Dict[str, Any]) -> Tuple[str, ...]:
        if function in ("createAccount", "query", "deposit"):
            return (account_key(str(args["account"])),)
        if function == "sendPayment":
            return (account_key(str(args["from"])), account_key(str(args["to"])))
        if function in ("preparePayment", "abortPayment"):
            return tuple(account_key(str(acc)) for acc in args.get("accounts", []))
        if function == "commitPayment":
            return tuple(account_key(str(acc)) for acc, _ in args.get("deltas", []))
        return ()


class SmallbankWorkload:
    """Generates Smallbank sendPayment transactions with Zipf-skewed account choice."""

    def __init__(self, num_accounts: int = 10_000, zipf_coefficient: float = 0.0,
                 max_amount: int = 50, seed: int = 0) -> None:
        if num_accounts < 2:
            raise WorkloadError("smallbank needs at least two accounts")
        self.chaincode = SmallbankChaincode()
        self.num_accounts = num_accounts
        self.max_amount = max_amount
        self._rng = random.Random(seed)
        self._zipf = ZipfGenerator(num_accounts, zipf_coefficient, rng=self._rng)

    def populate(self, state: StateStore) -> None:
        """Load the initial account balances into a shard's state store."""
        for key, balance in initial_balances(self.num_accounts).items():
            state.put(key, balance)

    def pick_accounts(self) -> Tuple[str, str]:
        source, destination = self._zipf.sample_many(2, distinct=True)
        return str(source), str(destination)

    def sample_payments(self, count: int) -> List[Tuple[str, str, int]]:
        """Sample ``count`` (source, destination, amount) triples in block layout.

        Block layout: the ``2 * count`` Zipf ranks are drawn as one block
        (numpy-accelerated via :meth:`ZipfGenerator.sample_block`, with a
        bit-identical scalar fallback), then colliding pairs are fixed up
        with scalar re-draws, then the amounts.  The RNG consumption *order*
        therefore differs from :meth:`next_transaction` (which interleaves
        ranks and amounts per transaction): a block-sampled workload is its
        own deterministic stream — identical with or without numpy installed,
        but not the same stream as the per-transaction path.
        """
        ranks = self._zipf.sample_block(2 * count)
        pairs: List[Tuple[int, int]] = []
        for index in range(count):
            source = ranks[2 * index]
            destination = ranks[2 * index + 1]
            attempts = 0
            while destination == source:
                destination = self._zipf.sample()
                attempts += 1
                if attempts > 50:
                    # Highly skewed tiny key spaces: give up on rejection and
                    # take the deterministic neighbour (consumes no RNG).
                    destination = (source + 1) % self.num_accounts
                    break
            pairs.append((source, destination))
        return [(str(source), str(destination), self._rng.randint(1, self.max_amount))
                for source, destination in pairs]

    def next_transaction(self, client_id: str = "client", now: float = 0.0) -> Transaction:
        """A sendPayment transaction between two distinct accounts."""
        source, destination = self.pick_accounts()
        args = {
            "from": source,
            "to": destination,
            "amount": self._rng.randint(1, self.max_amount),
        }
        return self.chaincode.new_transaction("sendPayment", args, client_id=client_id,
                                              submitted_at=now)

    def batch(self, count: int, client_id: str = "client", now: float = 0.0) -> List[Transaction]:
        return [self.next_transaction(client_id, now) for _ in range(count)]

    def tx_factory(self):
        """Adapter matching the client-driver ``tx_factory`` signature."""
        def factory(client_id: str, now: float, rng, count: int) -> List[Transaction]:
            return self.batch(count, client_id=client_id, now=now)
        return factory
