"""Figure 15 (Appendix C): consensus latency on the cluster and on GCP."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, ExperimentScale, run_consensus_point

PROTOCOLS = ("HL", "AHL", "AHL+", "AHLR")


def run(scale: Optional[ExperimentScale] = None,
        network_sizes: Optional[Sequence[int]] = None,
        environments: Sequence[str] = ("cluster", "gcp")) -> ExperimentResult:
    """Reproduce Figure 15: average commit latency versus committee size."""
    scale = scale or ExperimentScale.quick()
    network_sizes = network_sizes or scale.network_sizes
    result = ExperimentResult(
        experiment_id="fig15",
        title="AHL+ latency on the local cluster and on GCP",
        columns=["environment", "protocol", "n", "avg_latency_s", "p95_latency_s"],
        paper_reference="Figure 15",
        notes="Expected shape: latency grows with N; WAN latencies dominate on GCP.",
    )
    for environment in environments:
        for protocol in PROTOCOLS:
            for n in network_sizes:
                point = run_consensus_point(protocol, n, scale, environment=environment)
                result.add_row(environment=environment, protocol=protocol, n=n,
                               avg_latency_s=point.avg_latency,
                               p95_latency_s=point.p95_latency)
    return result
