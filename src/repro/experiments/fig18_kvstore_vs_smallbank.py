"""Figure 18 (Appendix C): sharding throughput, KVStore versus Smallbank.

Same setup as Figure 13 (f = 1 committees, closed-loop clients), comparing
the two benchmarks under AHL+-based and HL-based sharding.  KVStore issues 3
updates per transaction, Smallbank reads and writes 2 accounts, so their
cross-shard profiles differ slightly but the scaling shape is the same.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.client_api import attach_clients
from repro.core.config import ShardedSystemConfig
from repro.core.system import ShardedBlockchain
from repro.experiments.common import ExperimentResult


def run(network_sizes: Sequence[int] = (8, 12, 18),
        duration: float = 20.0, clients_per_shard: int = 4, outstanding: int = 16,
        num_keys: int = 1000, seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 18 (KVStore vs Smallbank sharded throughput)."""
    result = ExperimentResult(
        experiment_id="fig18",
        title="Sharding with KVStore vs Smallbank",
        columns=["series", "benchmark", "protocol", "n_total", "num_shards", "throughput_tps"],
        paper_reference="Figure 18",
        notes="Expected shape: both benchmarks scale with the shard count; AHL+ > HL sharding.",
    )
    for benchmark, tag in (("smallbank", "SB"), ("kvstore", "KVS")):
        for protocol in ("AHL+", "HL"):
            committee_size = 3 if protocol == "AHL+" else 4
            for total_nodes in network_sizes:
                num_shards = max(1, total_nodes // committee_size)
                config = ShardedSystemConfig(
                    num_shards=num_shards, committee_size=committee_size,
                    protocol=protocol, use_reference_committee=False,
                    benchmark=benchmark, num_keys=num_keys,
                    consensus_overrides={"batch_size": 30, "view_change_timeout": 5.0},
                    seed=seed,
                )
                system = ShardedBlockchain(config)
                attach_clients(system, count=clients_per_shard * num_shards,
                               outstanding=outstanding)
                outcome = system.run(duration)
                result.add_row(series=f"{tag}-{protocol}", benchmark=benchmark,
                               protocol=protocol, n_total=total_nodes,
                               num_shards=num_shards,
                               throughput_tps=outcome.throughput_tps)
    return result
