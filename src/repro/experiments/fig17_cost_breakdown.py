"""Figure 17 (Appendix C): consensus versus execution cost per block.

The paper shows that the consensus cost per block is an order of magnitude
larger than the execution cost, and that the gap widens with the committee
size.  We report the mean per-block consensus time (proposal to commit) and
the mean per-block execution time measured at an honest replica.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, ExperimentScale, run_consensus_point

PROTOCOLS = ("HL", "AHL", "AHL+", "AHLR")


def run(scale: Optional[ExperimentScale] = None,
        network_sizes: Optional[Sequence[int]] = None) -> ExperimentResult:
    """Reproduce Figure 17 (cost breakdown)."""
    scale = scale or ExperimentScale.quick()
    network_sizes = network_sizes or scale.network_sizes
    result = ExperimentResult(
        experiment_id="fig17",
        title="Consensus and execution cost breakdown",
        columns=["protocol", "n", "consensus_cost_s", "execution_cost_s", "ratio"],
        paper_reference="Figure 17",
        notes="Expected shape: consensus cost >> execution cost, gap grows with N.",
    )
    for protocol in PROTOCOLS:
        for n in network_sizes:
            point = run_consensus_point(protocol, n, scale)
            consensus = point.consensus_cost_mean
            execution = point.execution_cost_mean
            result.add_row(protocol=protocol, n=n,
                           consensus_cost_s=consensus,
                           execution_cost_s=execution,
                           ratio=(consensus / execution if execution else None))
    return result
