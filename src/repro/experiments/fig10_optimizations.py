"""Figure 10: contribution of each optimisation.

Against the HL baseline, the ablation adds: trusted hardware (AHL),
optimisation 1 (separate message queues), optimisation 2 (no request
broadcast), and optimisation 3 (leader aggregation, AHLR).  The paper finds
optimisation 2 helps most without failures, optimisation 1 helps most under
Byzantine failures, and AHL+ (1 + 2) is the best overall.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.consensus.byzantine import EquivocatingAttacker
from repro.experiments.common import ExperimentResult, ExperimentScale, run_consensus_point

#: Ablation ladder: display label -> (protocol registry key).
VARIANTS = (
    ("HL", "HL"),
    ("AHL", "AHL"),
    ("AHL + op1", "AHL+op1"),
    ("AHL + op1,2 (AHL+)", "AHL+"),
    ("AHL + op1,2,3 (AHLR)", "AHLR"),
)


def run(scale: Optional[ExperimentScale] = None,
        network_sizes: Sequence[int] = (7, 19),
        failure_counts: Sequence[int] = (2, 5),
        high_load_rate: float = 600.0) -> ExperimentResult:
    """Reproduce Figure 10: throughput of each optimisation step."""
    scale = scale or ExperimentScale.quick()
    result = ExperimentResult(
        experiment_id="fig10",
        title="Effect of the optimisations on throughput",
        columns=["panel", "variant", "n", "f", "throughput_tps", "view_changes", "queue_drops"],
        paper_reference="Figure 10",
        notes="Expected shape: op2 adds the most without failures, op1 the most with failures.",
    )
    for label, protocol in VARIANTS:
        for n in network_sizes:
            point = run_consensus_point(protocol, n, scale, client_rate=high_load_rate)
            result.add_row(panel="no_failures", variant=label, n=n, f=None,
                           throughput_tps=point.throughput_tps,
                           view_changes=point.view_changes,
                           queue_drops=point.queue_drops)
    for label, protocol in VARIANTS:
        for f in failure_counts:
            n = 3 * f + 1 if protocol == "HL" else 2 * f + 1
            attacker = EquivocatingAttacker(list(range(n - f, n)))
            point = run_consensus_point(protocol, n, scale, byzantine=attacker,
                                        client_rate=high_load_rate)
            result.add_row(panel="with_failures", variant=label, n=n, f=f,
                           throughput_tps=point.throughput_tps,
                           view_changes=point.view_changes,
                           queue_drops=point.queue_drops)
    return result
