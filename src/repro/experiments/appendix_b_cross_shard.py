"""Appendix B: probability that a transaction is cross-shard (Equation 3).

Analytic table plus a Monte-Carlo cross-check using the actual key-to-shard
hash mapping used by the sharded system.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.experiments.common import ExperimentResult
from repro.sharding.cross_shard import expected_shards_touched, probability_cross_shard
from repro.workloads.generator import shard_of_key


def _empirical_cross_shard(d: int, k: int, samples: int, rng: random.Random) -> float:
    cross = 0
    for _ in range(samples):
        keys = [f"key-{rng.randrange(10_000_000)}" for _ in range(d)]
        shards = {shard_of_key(key, k) for key in keys}
        if len(shards) > 1:
            cross += 1
    return cross / samples


def run(argument_counts: Sequence[int] = (2, 3, 5),
        shard_counts: Sequence[int] = (2, 4, 8, 16, 36),
        samples: int = 2000, seed: int = 0) -> ExperimentResult:
    """Reproduce the Appendix-B analysis (analytic and empirical)."""
    rng = random.Random(seed)
    result = ExperimentResult(
        experiment_id="appendix_b",
        title="Probability of cross-shard transactions",
        columns=["arguments", "shards", "analytic_probability", "empirical_probability",
                 "expected_shards_touched"],
        paper_reference="Appendix B (Equation 3)",
        notes="A vast majority of multi-argument transactions are cross-shard once k > 4.",
    )
    for d in argument_counts:
        for k in shard_counts:
            result.add_row(
                arguments=d, shards=k,
                analytic_probability=probability_cross_shard(d, k),
                empirical_probability=_empirical_cross_shard(d, k, samples, rng),
                expected_shards_touched=expected_shards_touched(d, k),
            )
    return result
