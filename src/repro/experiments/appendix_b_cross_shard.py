"""Appendix B: probability that a transaction is cross-shard (Equation 3).

Analytic table plus a Monte-Carlo cross-check using the actual key-to-shard
hash mapping used by the sharded system.

:func:`run_contention` extends the appendix with the lock-contention side of
the same analysis: it drives an actually contended (Zipf-skewed) Smallbank
workload through the full sharded system once per conflict policy and
reports how the scheduling policy (abort / wait / wound-wait) converts key
conflicts into aborts or queueing delay.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.experiments.common import ExperimentResult
from repro.sharding.cross_shard import (
    contention_probability,
    expected_shards_touched,
    probability_cross_shard,
)
from repro.workloads.generator import shard_of_key


def _empirical_cross_shard(d: int, k: int, samples: int, rng: random.Random) -> float:
    cross = 0
    for _ in range(samples):
        keys = [f"key-{rng.randrange(10_000_000)}" for _ in range(d)]
        shards = {shard_of_key(key, k) for key in keys}
        if len(shards) > 1:
            cross += 1
    return cross / samples


def run(argument_counts: Sequence[int] = (2, 3, 5),
        shard_counts: Sequence[int] = (2, 4, 8, 16, 36),
        samples: int = 2000, seed: int = 0) -> ExperimentResult:
    """Reproduce the Appendix-B analysis (analytic and empirical)."""
    rng = random.Random(seed)
    result = ExperimentResult(
        experiment_id="appendix_b",
        title="Probability of cross-shard transactions",
        columns=["arguments", "shards", "analytic_probability", "empirical_probability",
                 "expected_shards_touched"],
        paper_reference="Appendix B (Equation 3)",
        notes="A vast majority of multi-argument transactions are cross-shard once k > 4.",
    )
    for d in argument_counts:
        for k in shard_counts:
            result.add_row(
                arguments=d, shards=k,
                analytic_probability=probability_cross_shard(d, k),
                empirical_probability=_empirical_cross_shard(d, k, samples, rng),
                expected_shards_touched=expected_shards_touched(d, k),
            )
    return result


def run_contention(policies: Sequence[str] = ("abort", "wait", "wound-wait"),
                   num_shards: int = 4, num_keys: int = 200,
                   zipf_coefficient: float = 0.9, transactions: int = 300,
                   rate_tps: float = 200.0, seed: int = 7) -> ExperimentResult:
    """Conflict-policy comparison on a contended cross-shard workload.

    All policies see the identical seeded arrival stream; only the lock
    scheduling differs, so differences in abort rate are attributable to the
    policy alone.
    """
    from repro.core import OpenLoopDriver, ShardedBlockchain, ShardedSystemConfig

    result = ExperimentResult(
        experiment_id="appendix_b_contention",
        title="Lock-conflict policies under a contended Zipf workload",
        columns=["policy", "committed", "aborted", "abort_rate",
                 "mean_latency_s", "wait_timeouts", "wounded", "deadlocks",
                 "analytic_contention_probability"],
        paper_reference="Section 6.3 (2PC/2PL) under Appendix-B key skew",
        notes="wait/wound-wait convert first-conflict aborts into queueing; "
              "the analytic column is the uniform lower bound on contention.",
    )
    for policy in policies:
        system = ShardedBlockchain(ShardedSystemConfig(
            num_shards=num_shards, committee_size=4, num_keys=num_keys,
            zipf_coefficient=zipf_coefficient, seed=seed,
            conflict_policy=policy,
        ))
        driver = OpenLoopDriver(system, rate_tps=rate_tps,
                                max_transactions=transactions, batch_size=4)
        stats = driver.run_to_completion(drain_timeout=60.0)
        admission = system.admission
        result.add_row(
            policy=policy,
            committed=stats.committed,
            aborted=stats.aborted,
            abort_rate=stats.abort_rate,
            mean_latency_s=stats.mean_latency,
            wait_timeouts=admission.wait_timeouts if admission else 0,
            wounded=admission.wounded_transactions if admission else 0,
            deadlocks=admission.deadlocks_detected if admission else 0,
            analytic_contention_probability=contention_probability(
                num_keys, 2, max(2, int(rate_tps * 0.05))),
        )
    return result
