"""Figure 14: large-scale sharding performance on GCP.

Smallbank without the reference committee, up to 972 consensus nodes over 8
regions, for two adversarial powers: 12.5% (27-node committees) and 25%
(79-node committees).  Throughput scales linearly with the number of shards;
the 12.5% configuration exceeds 3,000 tps with 36 shards.

The full-size sweep uses the analytical performance model (validated against
the DES at small N); a small DES cross-check point is included so the model
and the simulator can be compared in the same table.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.client_api import attach_clients
from repro.core.config import ShardedSystemConfig
from repro.core.system import ShardedBlockchain
from repro.experiments.common import ExperimentResult
from repro.perfmodel.throughput import sharded_throughput
from repro.sharding.sizing import minimum_committee_size

#: The committee sizes the paper reports for 2^-20 failure probability.
ADVERSARY_COMMITTEES = {0.125: 27, 0.25: 79}


def run(network_sizes: Sequence[int] = (162, 324, 486, 648, 810, 972),
        adversaries: Sequence[float] = (0.125, 0.25),
        des_validation_shards: int = 2,
        des_committee_size: int = 5,
        des_duration: float = 15.0,
        seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 14 (throughput and #shards vs network size)."""
    result = ExperimentResult(
        experiment_id="fig14",
        title="Sharding performance on GCP (Smallbank, w/o reference committee)",
        columns=["source", "adversary", "n_total", "committee_size", "num_shards",
                 "throughput_tps"],
        paper_reference="Figure 14",
        notes=("Expected shape: throughput grows linearly with the number of shards; "
               "the 12.5% adversary (27-node committees) reaches several thousand tps, "
               "the 25% adversary (79-node committees) roughly 3-4x less."),
    )
    for adversary in adversaries:
        committee = ADVERSARY_COMMITTEES.get(adversary)
        if committee is None:
            committee = minimum_committee_size(1600, adversary, resilience=0.5)
        for n_total in network_sizes:
            num_shards = max(1, n_total // committee)
            throughput = sharded_throughput(
                protocol="AHL+", committee_size=committee, num_shards=num_shards,
                batch_size=100, one_way_delay=0.05, cross_shard_fraction=1.0,
                reference_committee=False,
            )
            result.add_row(source="model", adversary=adversary, n_total=n_total,
                           committee_size=committee, num_shards=num_shards,
                           throughput_tps=throughput)
    # DES cross-check at small scale (same code path as Figure 13).
    config = ShardedSystemConfig(
        num_shards=des_validation_shards, committee_size=des_committee_size,
        protocol="AHL+", use_reference_committee=False, benchmark="smallbank",
        num_keys=500, consensus_overrides={"batch_size": 30, "view_change_timeout": 5.0},
        seed=seed,
    )
    system = ShardedBlockchain(config)
    attach_clients(system, count=4 * des_validation_shards, outstanding=16)
    outcome = system.run(des_duration)
    result.add_row(source="des", adversary=0.0,
                   n_total=des_validation_shards * des_committee_size,
                   committee_size=des_committee_size, num_shards=des_validation_shards,
                   throughput_tps=outcome.throughput_tps)
    return result
