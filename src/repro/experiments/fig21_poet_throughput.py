"""Figure 21 (Appendix C.1): PoET versus PoET+ throughput.

Block sizes of 2, 4 and 8 MB over a 50 Mbps / 100 ms network.  PoET+ filters
the competitor set to roughly sqrt(N) nodes, which keeps the fork rate — and
therefore the wasted propagation/validation work — low as N grows.
"""

from __future__ import annotations

from typing import Sequence

from repro.consensus.poet import PoetNetworkConfig, run_poet_network
from repro.experiments.common import ExperimentResult


def _duration_for(config: PoetNetworkConfig, target_blocks: int = 40) -> float:
    expected_interval = config.wait_scale / max(1, config.n * 2 ** -config.q_bits)
    return max(120.0, min(3600.0, target_blocks * expected_interval))


def run(network_sizes: Sequence[int] = (2, 8, 32),
        block_sizes_mb: Sequence[float] = (2.0, 8.0),
        wait_scale: float = 240.0,
        seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 21 (PoET and PoET+ throughput)."""
    result = ExperimentResult(
        experiment_id="fig21",
        title="PoET and PoET+ throughput",
        columns=["series", "protocol", "block_size_mb", "n", "throughput_tps",
                 "stale_rate", "main_chain_blocks"],
        paper_reference="Figure 21",
        notes=("Expected shape: PoET degrades as N grows (forks waste propagation and "
               "validation capacity); PoET+ sustains higher useful throughput at scale."),
    )
    for block_size in block_sizes_mb:
        for n in network_sizes:
            for protocol, q_bits in (("PoET", 0), ("PoET+", PoetNetworkConfig.poet_plus_q_bits(n))):
                config = PoetNetworkConfig(
                    n=n, block_size_mb=block_size, wait_scale=wait_scale, q_bits=q_bits,
                )
                duration = _duration_for(config)
                outcome = run_poet_network(config, duration=duration, seed=seed)
                result.add_row(series=f"{protocol} {block_size:g}MB", protocol=protocol,
                               block_size_mb=block_size, n=n,
                               throughput_tps=outcome.throughput_tps,
                               stale_rate=outcome.stale_rate,
                               main_chain_blocks=outcome.main_chain_blocks)
    return result
