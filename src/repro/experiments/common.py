"""Shared infrastructure for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.consensus.cluster import ClusterRunResult, ConsensusCluster
from repro.sim.latency import LanLatencyModel, LatencyModel, gcp_latency_model, GCP_REGIONS


@dataclass
class ExperimentScale:
    """Knobs that trade fidelity for runtime.

    ``quick`` is the default used by the benchmark suite; ``paper`` follows
    the paper's parameter grid more closely (minutes-to-hours of wall clock).
    """

    name: str = "quick"
    duration: float = 5.0
    clients: int = 6
    client_rate_tps: float = 300.0
    batch_size: int = 100
    network_sizes: Sequence[int] = (7, 19, 31)
    view_change_timeout: float = 5.0
    queue_capacity: int = 400

    @staticmethod
    def quick() -> "ExperimentScale":
        return ExperimentScale()

    @staticmethod
    def paper() -> "ExperimentScale":
        return ExperimentScale(
            name="paper", duration=30.0, clients=10, client_rate_tps=600.0,
            network_sizes=(7, 19, 31, 43, 55, 67, 79),
        )


@dataclass
class ExperimentResult:
    """A table of results for one figure or table of the paper."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: str = ""
    paper_reference: str = ""
    #: Free-form per-run extras that do not fit the tabular shape (e.g. the
    #: per-strategy migration counts of the reconfiguration experiment).
    metadata: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def format_table(self, float_digits: int = 2) -> str:
        """Human-readable fixed-width table (what the benchmark harness prints)."""
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.{float_digits}f}"
            if value is None:
                return "-"
            return str(value)

        widths = {col: len(col) for col in self.columns}
        rendered_rows = []
        for row in self.rows:
            rendered = {col: fmt(row.get(col)) for col in self.columns}
            rendered_rows.append(rendered)
            for col, text in rendered.items():
                widths[col] = max(widths[col], len(text))
        header = "  ".join(col.ljust(widths[col]) for col in self.columns)
        divider = "  ".join("-" * widths[col] for col in self.columns)
        lines = [f"== {self.experiment_id}: {self.title} ==", header, divider]
        for rendered in rendered_rows:
            lines.append("  ".join(rendered[col].ljust(widths[col]) for col in self.columns))
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)


def cluster_latency_model(environment: str = "cluster", num_regions: int = 8) -> LatencyModel:
    """Latency model for 'cluster' (LAN) or 'gcp' (Table-3 WAN) environments."""
    if environment == "cluster":
        return LanLatencyModel()
    if environment == "gcp":
        return gcp_latency_model(num_regions=num_regions)
    raise ValueError(f"unknown environment {environment!r}")


def gcp_regions(num_regions: int = 8) -> Sequence[str]:
    return GCP_REGIONS[:num_regions]


def run_consensus_point(protocol: str, n: int, scale: ExperimentScale,
                        environment: str = "cluster", num_regions: int = 8,
                        byzantine=None, clients: Optional[int] = None,
                        client_rate: Optional[float] = None,
                        config_overrides: Optional[Dict[str, Any]] = None,
                        seed: int = 0) -> ClusterRunResult:
    """Run one (protocol, N) single-committee measurement and return its stats."""
    overrides: Dict[str, Any] = {
        "batch_size": scale.batch_size,
        "view_change_timeout": scale.view_change_timeout,
        "queue_capacity": scale.queue_capacity,
    }
    overrides.update(config_overrides or {})
    cluster = ConsensusCluster(
        protocol=protocol,
        n=n,
        latency_model=cluster_latency_model(environment, num_regions),
        regions=gcp_regions(num_regions) if environment == "gcp" else None,
        config_overrides=overrides,
        byzantine=byzantine,
        seed=seed,
    )
    cluster.add_open_loop_clients(
        clients if clients is not None else scale.clients,
        rate_tps=client_rate if client_rate is not None else scale.client_rate_tps,
        batch_size=10,
    )
    return cluster.run(scale.duration)
