"""Table 1: methodology comparison with other sharded blockchains."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult

_SYSTEMS = (
    {"system": "Elastico", "machines": 800, "over_subscription": 2,
     "transaction_model": "UTXO", "distributed_transactions": False},
    {"system": "OmniLedger", "machines": 60, "over_subscription": 67,
     "transaction_model": "UTXO", "distributed_transactions": False},
    {"system": "RapidChain", "machines": 32, "over_subscription": 125,
     "transaction_model": "UTXO", "distributed_transactions": True},
    {"system": "Ours", "machines": 1400, "over_subscription": 1,
     "transaction_model": "General workload", "distributed_transactions": True},
)


def run() -> ExperimentResult:
    """Reproduce Table 1 (a static comparison, included for completeness)."""
    result = ExperimentResult(
        experiment_id="table1",
        title="Comparison with other sharded blockchains",
        columns=["system", "machines", "over_subscription", "transaction_model",
                 "distributed_transactions"],
        paper_reference="Table 1",
        notes="Static methodology comparison reproduced verbatim from the paper.",
    )
    for row in _SYSTEMS:
        result.add_row(**row)
    return result
