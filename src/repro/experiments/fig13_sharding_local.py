"""Figure 13: sharding performance on the local cluster.

Left panel: Smallbank throughput as the network grows with ``f = 1``
committees, with and without the reference committee, for AHL+-based and
HL-based sharding (AHL+ committees need 3 nodes per shard, HL committees 4,
so AHL+ yields more shards from the same network).  Right panel: abort rate
as the workload skew (Zipf coefficient) grows.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.client_api import attach_clients
from repro.core.config import ShardedSystemConfig
from repro.core.system import ShardedBlockchain
from repro.experiments.common import ExperimentResult


def _run_sharded(protocol: str, total_nodes: int, with_reference: bool,
                 zipf: float, duration: float, clients_per_shard: int,
                 outstanding: int, benchmark: str, num_keys: int, seed: int) -> dict:
    committee_size = 4 if protocol == "HL" else 3   # f = 1
    num_shards = max(1, total_nodes // committee_size)
    config = ShardedSystemConfig(
        num_shards=num_shards, committee_size=committee_size, protocol=protocol,
        use_reference_committee=with_reference, benchmark=benchmark,
        num_keys=num_keys, zipf_coefficient=zipf,
        consensus_overrides={"batch_size": 30, "view_change_timeout": 5.0},
        seed=seed,
    )
    system = ShardedBlockchain(config)
    attach_clients(system, count=clients_per_shard * num_shards, outstanding=outstanding)
    outcome = system.run(duration)
    return {
        "num_shards": num_shards,
        "throughput": outcome.throughput_tps,
        "abort_rate": outcome.abort_rate,
        "latency": outcome.mean_latency,
        "cross_shard_fraction": outcome.cross_shard_fraction,
    }


def run(network_sizes: Sequence[int] = (8, 12, 18),
        zipf_values: Sequence[float] = (0.0, 0.99, 1.49),
        zipf_network_size: int = 12,
        duration: float = 20.0, clients_per_shard: int = 4, outstanding: int = 16,
        benchmark: str = "smallbank", num_keys: int = 1000,
        seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 13 (throughput scaling and abort rate vs skew)."""
    result = ExperimentResult(
        experiment_id="fig13",
        title="Sharding performance on the local cluster (Smallbank)",
        columns=["panel", "series", "x", "num_shards", "throughput_tps", "abort_rate"],
        paper_reference="Figure 13",
        notes=("Expected shape: throughput scales with the number of shards; AHL+ sharding "
               "forms more shards than HL from the same node budget; the reference "
               "committee adds overhead; abort rate grows with the Zipf coefficient."),
    )
    for protocol in ("AHL+", "HL"):
        for with_reference in (True, False):
            series = f"{protocol};{'w R' if with_reference else 'w/o R'}"
            for total_nodes in network_sizes:
                point = _run_sharded(protocol, total_nodes, with_reference, 0.0, duration,
                                     clients_per_shard, outstanding, benchmark, num_keys, seed)
                result.add_row(panel="throughput", series=series, x=total_nodes,
                               num_shards=point["num_shards"],
                               throughput_tps=point["throughput"],
                               abort_rate=point["abort_rate"])
    for zipf in zipf_values:
        point = _run_sharded("AHL+", zipf_network_size, True, zipf, duration,
                             clients_per_shard, outstanding, benchmark,
                             max(200, num_keys // 4), seed)
        result.add_row(panel="abort_rate", series=f"N={zipf_network_size}", x=zipf,
                       num_shards=point["num_shards"],
                       throughput_tps=point["throughput"],
                       abort_rate=point["abort_rate"])
    return result
