"""Figure 2: comparison of BFT implementations (HL, Tendermint, IBFT, Raft).

Left: throughput as the number of nodes grows.  Right: throughput as the
number of concurrent clients grows at a fixed committee size.  The paper's
finding is that Hyperledger's pipelined PBFT outperforms the lockstep
alternatives at scale.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, ExperimentScale, run_consensus_point

PROTOCOLS = ("HL", "Tendermint", "IBFT", "Raft")


def run(scale: Optional[ExperimentScale] = None,
        network_sizes: Optional[Sequence[int]] = None,
        client_counts: Sequence[int] = (1, 4, 16),
        client_n: int = 7) -> ExperimentResult:
    """Reproduce Figure 2 (both panels)."""
    scale = scale or ExperimentScale.quick()
    network_sizes = network_sizes or scale.network_sizes
    result = ExperimentResult(
        experiment_id="fig02",
        title="BFT protocol comparison (varying N and #clients)",
        columns=["panel", "protocol", "n", "clients", "throughput_tps", "avg_latency_s"],
        paper_reference="Figure 2",
        notes="Expected shape: HL (pipelined PBFT) >= Tendermint > Raft/IBFT at scale.",
    )
    for protocol in PROTOCOLS:
        for n in network_sizes:
            point = run_consensus_point(protocol, n, scale)
            result.add_row(panel="varying_n", protocol=protocol, n=n,
                           clients=scale.clients,
                           throughput_tps=point.throughput_tps,
                           avg_latency_s=point.avg_latency)
    for protocol in PROTOCOLS:
        for clients in client_counts:
            point = run_consensus_point(protocol, client_n, scale, clients=clients)
            result.add_row(panel="varying_clients", protocol=protocol, n=client_n,
                           clients=clients,
                           throughput_tps=point.throughput_tps,
                           avg_latency_s=point.avg_latency)
    return result
