"""Registry of all experiments (one per table/figure of the paper)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigurationError
from repro.experiments import (
    appendix_b_cross_shard,
    fig02_bft_comparison,
    fig08_ahl_cluster,
    fig09_ahl_gcp,
    fig10_optimizations,
    fig11_shard_formation,
    fig12_reconfiguration,
    fig13_sharding_local,
    fig14_sharding_gcp,
    fig15_latency,
    fig16_view_changes,
    fig17_cost_breakdown,
    fig18_kvstore_vs_smallbank,
    fig19_clients_gcp,
    fig20_clients_cluster,
    fig21_poet_throughput,
    fig22_poet_stale_rate,
    table1_comparison,
    table2_enclave_costs,
    table3_region_latency,
)
from repro.experiments.common import ExperimentResult

#: experiment id -> run() callable.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1_comparison.run,
    "table2": table2_enclave_costs.run,
    "table3": table3_region_latency.run,
    "fig02": fig02_bft_comparison.run,
    "fig08": fig08_ahl_cluster.run,
    "fig09": fig09_ahl_gcp.run,
    "fig10": fig10_optimizations.run,
    "fig11": fig11_shard_formation.run,
    "fig12": fig12_reconfiguration.run,
    "fig13": fig13_sharding_local.run,
    "fig14": fig14_sharding_gcp.run,
    "fig15": fig15_latency.run,
    "fig16": fig16_view_changes.run,
    "fig17": fig17_cost_breakdown.run,
    "fig18": fig18_kvstore_vs_smallbank.run,
    "fig19": fig19_clients_gcp.run,
    "fig20": fig20_clients_cluster.run,
    "fig21": fig21_poet_throughput.run,
    "fig22": fig22_poet_stale_rate.run,
    "appendix_b": appendix_b_cross_shard.run,
}


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up an experiment's run() function by id (e.g. ``"fig08"``)."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from exc


def run_all(only: List[str] | None = None, **kwargs) -> List[ExperimentResult]:
    """Run every (or the selected) experiment with default parameters."""
    results = []
    for experiment_id, runner in EXPERIMENTS.items():
        if only is not None and experiment_id not in only:
            continue
        results.append(runner(**kwargs) if kwargs else runner())
    return results
