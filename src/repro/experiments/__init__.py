"""Experiment harness: one module per table/figure of the paper's evaluation.

Every module exposes a ``run(...)`` function returning an
:class:`~repro.experiments.common.ExperimentResult` whose rows mirror the
series plotted in the paper.  The benchmark suite under ``benchmarks/`` calls
these functions (with scaled-down parameters so they finish in CI time) and
prints the resulting tables; ``repro.experiments.registry`` lists them all.
"""

from repro.experiments.common import ExperimentResult, ExperimentScale
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_all

__all__ = ["ExperimentResult", "ExperimentScale", "EXPERIMENTS", "get_experiment", "run_all"]
