"""Figure 20 (Appendix C): throughput with a varying number of clients on the cluster.

Smallbank and KVStore single-committee workloads with an increasing number of
open-loop clients.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.consensus.cluster import ConsensusCluster
from repro.experiments.common import ExperimentResult, ExperimentScale, cluster_latency_model
from repro.ledger.chaincode import ChaincodeRegistry
from repro.workloads.kvstore import KVStoreWorkload
from repro.workloads.smallbank import SmallbankWorkload

PROTOCOLS = ("HL", "AHL", "AHL+", "AHLR")


def _run_point(protocol: str, n: int, clients: int, benchmark: str,
               scale: ExperimentScale, seed: int = 0):
    if benchmark == "smallbank":
        workload = SmallbankWorkload(num_accounts=2000, seed=seed)
    else:
        workload = KVStoreWorkload(num_keys=2000, seed=seed)

    def registry_factory() -> ChaincodeRegistry:
        registry = ChaincodeRegistry()
        registry.register(workload.chaincode)
        return registry

    cluster = ConsensusCluster(
        protocol=protocol, n=n,
        latency_model=cluster_latency_model("cluster"),
        config_overrides={"batch_size": scale.batch_size,
                          "view_change_timeout": scale.view_change_timeout,
                          "queue_capacity": scale.queue_capacity},
        registry_factory=registry_factory,
        seed=seed,
    )
    for replica in cluster.replicas:
        workload.populate(replica.state)
    cluster.add_open_loop_clients(clients, rate_tps=scale.client_rate_tps, batch_size=10,
                                  tx_factory=workload.tx_factory())
    return cluster.run(scale.duration)


def run(scale: Optional[ExperimentScale] = None,
        client_counts: Sequence[int] = (1, 4, 16),
        n: int = 7,
        benchmarks: Sequence[str] = ("smallbank", "kvstore")) -> ExperimentResult:
    """Reproduce Figure 20 (throughput vs #clients, Smallbank and KVStore)."""
    scale = scale or ExperimentScale.quick()
    result = ExperimentResult(
        experiment_id="fig20",
        title="Throughput with varying workload on the local cluster",
        columns=["benchmark", "protocol", "clients", "throughput_tps", "avg_latency_s"],
        paper_reference="Figure 20",
        notes="Expected shape: throughput rises with offered load, then saturates.",
    )
    for benchmark in benchmarks:
        for protocol in PROTOCOLS:
            for clients in client_counts:
                point = _run_point(protocol, n, clients, benchmark, scale)
                result.add_row(benchmark=benchmark, protocol=protocol, clients=clients,
                               throughput_tps=point.throughput_tps,
                               avg_latency_s=point.avg_latency)
    return result
