"""Table 3: inter-region latency on Google Cloud Platform.

The matrix is an *input* to the WAN experiments; the experiment verifies that
the latency model reproduces it (and reports the derived one-way delays the
simulator actually uses).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.sim.latency import GCP_REGIONS, GCP_REGION_LATENCY_MS, gcp_latency_model


def run() -> ExperimentResult:
    """Reproduce Table 3 and the derived one-way model delays."""
    model = gcp_latency_model(num_regions=len(GCP_REGIONS), jitter_fraction=0.0)
    result = ExperimentResult(
        experiment_id="table3",
        title="Latency (ms) between GCP regions",
        columns=["src", "dst", "paper_rtt_ms", "model_one_way_ms"],
        paper_reference="Table 3",
    )
    for src in GCP_REGIONS:
        for dst in GCP_REGIONS:
            one_way = model.delay(src, dst, size_bytes=0) * 1000.0
            result.add_row(
                src=src, dst=dst,
                paper_rtt_ms=GCP_REGION_LATENCY_MS[src][dst],
                model_one_way_ms=one_way,
            )
    return result
