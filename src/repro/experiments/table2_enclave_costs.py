"""Table 2: runtime cost of enclave operations.

The paper measured these on an SGX-enabled Skylake CPU and injected them into
SGX simulation mode; our cost model does the same.  The "measured" column
times the software-modelled enclave operations themselves (signature /
append / beacon invocation) to show they are functional, while the
"model_us" column is the value injected into the simulator and compared to
the paper's numbers.
"""

from __future__ import annotations

import time

from repro.crypto.costs import TABLE2_PAPER_VALUES_US, TABLE2_ROWS
from repro.experiments.common import ExperimentResult
from repro.tee.attested_log import AttestedAppendOnlyLog
from repro.tee.randomness_beacon import RandomnessBeaconEnclave


def _time_operation(operation, repetitions: int = 200) -> float:
    # detlint: disable=DET001 -- Table 2 reproduces measured enclave microbenchmark latencies; wall time IS the quantity under study
    start = time.perf_counter()
    for _ in range(repetitions):
        operation()
    # detlint: disable=DET001 -- Table 2 reproduces measured enclave microbenchmark latencies; wall time IS the quantity under study
    return (time.perf_counter() - start) / repetitions * 1e6


def run(repetitions: int = 200) -> ExperimentResult:
    """Reproduce Table 2: model costs (used by the simulator) vs the paper's values."""
    result = ExperimentResult(
        experiment_id="table2",
        title="Runtime costs of enclave operations (microseconds)",
        columns=["operation", "model_us", "paper_us", "software_model_us"],
        paper_reference="Table 2",
        notes=("model_us is injected into the DES; software_model_us is the wall-clock cost "
               "of our software enclave stand-in (not expected to match SGX hardware)."),
    )
    log = AttestedAppendOnlyLog("table2-a2m")
    beacon = RandomnessBeaconEnclave("table2-beacon", q_bits=0)
    positions = iter(range(10_000_000))
    epochs = iter(range(10_000_000))
    measured = {
        "AHL Append": _time_operation(lambda: log.append("prepare", next(positions), "digest"),
                                      repetitions),
        "RandomnessBeacon": _time_operation(lambda: beacon.invoke(next(epochs)), repetitions),
    }
    for operation, model_us in TABLE2_ROWS:
        result.add_row(
            operation=operation,
            model_us=model_us,
            paper_us=TABLE2_PAPER_VALUES_US.get(operation),
            software_model_us=measured.get(operation),
        )
    return result
