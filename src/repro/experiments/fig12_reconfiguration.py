"""Figure 12: throughput during shard reconfiguration.

Three strategies on a sharded deployment under a fixed open-loop load: no
resharding (baseline), swap-all (the naive approach — every transitioning
node leaves at once, committees lose their quorums, producing a deep
throughput trough followed by a backlog spike), and swap-log(n) (the paper's
batched approach — at most ``B = log n`` members of a committee are absent
at a time, so every committee keeps a quorum and throughput tracks the
baseline).

Unlike the seed's version of this experiment — which merely crash/recovered
replicas in place — the reconfigurations here run the *live epoch
lifecycle*: beacon randomness, committee re-assignment, and executed
migrations in which membership really changes and each transitioning node
pays a state-transfer delay derived from the destination shard's actual
state size (``state_transfer_seconds`` under ``state_bandwidth_bps``).
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import ShardedSystemConfig
from repro.core.driver import OpenLoopDriver
from repro.core.system import ShardedBlockchain
from repro.experiments.common import ExperimentResult

#: Modelled shard-state transfer bandwidth.  Deliberately low so the toy
#: key counts of the scaled-down experiment produce the multi-second
#: transfer windows of the paper's full-size deployment (a shard's ~12 KB
#: state takes ~5 s per transitioning node).
TRANSFER_BANDWIDTH_BPS = 20_000.0

#: The experiment's deployment knobs (minus the swept shape parameters).
#: ``benchmarks/bench_reconfiguration.py`` gates CI on this exact
#: configuration, so it imports these instead of keeping a drifting copy.
WORKLOAD = dict(protocol="AHL+", use_reference_committee=False,
                benchmark="smallbank", num_keys=500, prepare_timeout=8.0,
                state_bandwidth_bps=TRANSFER_BANDWIDTH_BPS)
CONSENSUS_OVERRIDES = {"batch_size": 20, "view_change_timeout": 3.0}


def _run_strategy(strategy: Optional[str], duration: float, committee_size: int,
                  num_shards: int, rate_tps: float,
                  state_transfer: Optional[float], seed: int) -> dict:
    config = ShardedSystemConfig(
        num_shards=num_shards, committee_size=committee_size,
        consensus_overrides=dict(CONSENSUS_OVERRIDES),
        seed=seed, **WORKLOAD,
    )
    system = ShardedBlockchain(config)
    driver = OpenLoopDriver(system, rate_tps=rate_tps, batch_size=2).start()
    if strategy is not None:
        # Two reconfigurations, as in the paper's Figure 12 (right).
        system.perform_reconfiguration(strategy, at_time=duration * 0.3,
                                       state_transfer_seconds=state_transfer,
                                       batch_interval=2.0)
        system.perform_reconfiguration(strategy, at_time=duration * 0.65,
                                       state_transfer_seconds=state_transfer,
                                       batch_interval=2.0)
    outcome = system.run(duration)
    return {
        "throughput": driver.stats.committed / duration,
        "series": system.throughput_over_time(bucket_seconds=duration / 20.0),
        "aborted": driver.stats.aborted,
        "epochs": outcome.current_epoch,
        "reconfigurations": outcome.reconfigurations_completed,
        "migrated": sum(t.nodes_moved for t in system.epoch_transitions),
        "epoch_committed": dict(driver.stats.epoch_committed),
    }


def run(duration: float = 60.0, committee_size: int = 4, num_shards: int = 3,
        rate_tps: float = 30.0, state_transfer: Optional[float] = None,
        seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 12: average throughput and throughput over time per strategy.

    ``state_transfer`` forces a fixed per-node transfer delay; the default
    (``None``) derives it from the destination shard's actual state size.
    """
    result = ExperimentResult(
        experiment_id="fig12",
        title="Performance during shard reconfiguration",
        columns=["strategy", "time_s", "throughput_tps"],
        paper_reference="Figure 12",
        notes=("Expected shape: swap-all drops to ~0 during the transition and spikes "
               "afterwards; swap-log(n) tracks the no-reshard baseline.  Committee "
               "membership really changes between epochs (see the migrated counts)."),
    )
    strategies = (("no_reshard", None), ("swap_all", "swap-all"), ("swap_log_n", "swap-batch"))
    for label, strategy in strategies:
        outcome = _run_strategy(strategy, duration, committee_size, num_shards,
                                rate_tps, state_transfer, seed)
        result.add_row(strategy=label, time_s=None, throughput_tps=outcome["throughput"])
        for time_s, rate in outcome["series"]:
            result.add_row(strategy=f"{label}_series", time_s=time_s, throughput_tps=rate)
        result.metadata[label] = {key: outcome[key]
                                  for key in ("epochs", "reconfigurations",
                                              "migrated", "aborted",
                                              "epoch_committed")}
    return result
