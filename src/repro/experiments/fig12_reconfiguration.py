"""Figure 12: throughput during shard reconfiguration.

Three strategies on a two-shard deployment: no resharding (baseline),
swap-all (the naive approach — every node stops, fetches state, restarts,
producing a deep throughput trough followed by a backlog spike), and
swap-log(n) (the paper's batched approach — throughput stays at the
baseline because every committee keeps a quorum during the transition).
"""

from __future__ import annotations

from typing import Optional

from repro.core.client_api import attach_clients
from repro.core.config import ShardedSystemConfig
from repro.core.system import ShardedBlockchain
from repro.experiments.common import ExperimentResult


def _run_strategy(strategy: Optional[str], duration: float, committee_size: int,
                  num_shards: int, clients: int, outstanding: int,
                  state_transfer: float, seed: int) -> dict:
    config = ShardedSystemConfig(
        num_shards=num_shards, committee_size=committee_size, protocol="AHL+",
        use_reference_committee=False, benchmark="smallbank", num_keys=500,
        consensus_overrides={"batch_size": 20, "view_change_timeout": 5.0},
        seed=seed,
    )
    system = ShardedBlockchain(config)
    attach_clients(system, count=clients, outstanding=outstanding)
    if strategy is not None:
        # Two reconfigurations, as in the paper's Figure 12 (right).
        system.perform_reconfiguration(strategy, at_time=duration * 0.3,
                                       state_transfer_seconds=state_transfer)
        system.perform_reconfiguration(strategy, at_time=duration * 0.65,
                                       state_transfer_seconds=state_transfer)
    outcome = system.run(duration)
    return {
        "throughput": outcome.throughput_tps,
        "series": system.throughput_over_time(bucket_seconds=duration / 20.0),
        "aborted": outcome.aborted_transactions,
    }


def run(duration: float = 60.0, committee_size: int = 5, num_shards: int = 2,
        clients: int = 6, outstanding: int = 16, state_transfer: float = 8.0,
        seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 12: average throughput and throughput over time per strategy."""
    result = ExperimentResult(
        experiment_id="fig12",
        title="Performance during shard reconfiguration",
        columns=["strategy", "time_s", "throughput_tps"],
        paper_reference="Figure 12",
        notes=("Expected shape: swap-all drops to ~0 during the transition and spikes "
               "afterwards; swap-log(n) tracks the no-reshard baseline."),
    )
    strategies = (("no_reshard", None), ("swap_all", "swap-all"), ("swap_log_n", "swap-batch"))
    for label, strategy in strategies:
        outcome = _run_strategy(strategy, duration, committee_size, num_shards,
                                clients, outstanding, state_transfer, seed)
        result.add_row(strategy=label, time_s=None, throughput_tps=outcome["throughput"])
        for time_s, rate in outcome["series"]:
            result.add_row(strategy=f"{label}_series", time_s=time_s, throughput_tps=rate)
    return result
