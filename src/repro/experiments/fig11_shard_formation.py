"""Figure 11: shard formation — committee size and randomness-generation time.

Left panel: minimum committee size versus adversarial power, comparing
OmniLedger-style committees (PBFT, 1/3 resilience) with ours (AHL+, 1/2
resilience).  Right panel: running time of the distributed randomness
generation, comparing our TEE beacon protocol against RandHound with
``c = 16``, on the LAN and WAN latency models.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.randhound import randhound_running_time
from repro.experiments.common import ExperimentResult
from repro.sharding.beacon_protocol import (
    BeaconProtocol,
    analytical_running_time,
)
from repro.sharding.sizing import committee_size_table
from repro.sim.latency import LanLatencyModel, gcp_latency_model


def run(byzantine_fractions: Sequence[float] = (0.01, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30),
        network_sizes: Sequence[int] = (32, 64, 128, 256, 512),
        simulate_up_to: int = 64,
        network_size_for_sizing: int = 10_000,
        seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 11 (committee sizes and shard-formation running time)."""
    result = ExperimentResult(
        experiment_id="fig11",
        title="Shard formation: committee size and randomness generation time",
        columns=["panel", "x", "series", "value"],
        paper_reference="Figure 11",
        notes=("Committee sizes: ours up to two orders of magnitude smaller. "
               "Running time: ours one to two orders of magnitude faster than RandHound."),
    )
    # Left panel: committee size vs adversarial power.
    for row in committee_size_table(byzantine_fractions, network_size=network_size_for_sizing):
        result.add_row(panel="committee_size", x=row["byzantine_fraction"],
                       series="OmniLedger (3f+1)", value=row["omniledger_pbft"])
        result.add_row(panel="committee_size", x=row["byzantine_fraction"],
                       series="Ours (2f+1)", value=row["ours_ahl_plus"])

    # Right panel: running time vs network size on LAN and WAN.
    for environment, latency_model in (("cluster", LanLatencyModel()),
                                       ("gcp", gcp_latency_model())):
        for n in network_sizes:
            delta = 3.0 * latency_model.delay_bound(1024)
            # The paper derives Delta empirically (2-4.5 s on the cluster,
            # 5.9-15 s on GCP); the propagation bound alone underestimates it,
            # so scale to the reported ranges.
            delta = max(delta, (2.0 if environment == "cluster" else 6.0))
            delta = delta * (1.0 + n / 512.0)
            if n <= simulate_up_to:
                protocol = BeaconProtocol(network_size=n, delta=delta,
                                          latency_model=latency_model, seed=seed)
                ours = protocol.run_epoch().elapsed_seconds
            else:
                ours = analytical_running_time(n, delta)
            round_trip = 2.0 * latency_model.delay_bound(1024)
            randhound = randhound_running_time(n, round_trip=max(round_trip, 0.02))
            result.add_row(panel="formation_time", x=n,
                           series=f"Ours-{environment}", value=ours)
            result.add_row(panel="formation_time", x=n,
                           series=f"RandHound-{environment}", value=randhound)
    return result
