"""Figure 9: AHL+ versus HL / AHL / AHLR on GCP (4 and 8 regions).

Same protocols as Figure 8, but nodes are spread over the Table-3 regions, so
commit latency is dominated by WAN round trips.  The paper observes that HL
and AHL show no throughput at all in this setting, while AHL+ and AHLR stay
above 200 tps.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, ExperimentScale, run_consensus_point

PROTOCOLS = ("HL", "AHL", "AHL+", "AHLR")


def run(scale: Optional[ExperimentScale] = None,
        network_sizes: Optional[Sequence[int]] = None,
        region_counts: Sequence[int] = (4, 8),
        high_load_rate: float = 600.0) -> ExperimentResult:
    """Reproduce Figure 9 (4-region and 8-region panels)."""
    scale = scale or ExperimentScale.quick()
    network_sizes = network_sizes or scale.network_sizes
    result = ExperimentResult(
        experiment_id="fig09",
        title="AHL+ performance on GCP",
        columns=["regions", "protocol", "n", "throughput_tps", "avg_latency_s",
                 "view_changes", "queue_drops"],
        paper_reference="Figure 9",
        notes="Expected shape: AHL+ and AHLR sustain throughput over WAN; HL/AHL collapse.",
    )
    for regions in region_counts:
        for protocol in PROTOCOLS:
            for n in network_sizes:
                point = run_consensus_point(protocol, n, scale, environment="gcp",
                                            num_regions=regions,
                                            client_rate=high_load_rate)
                result.add_row(regions=regions, protocol=protocol, n=n,
                               throughput_tps=point.throughput_tps,
                               avg_latency_s=point.avg_latency,
                               view_changes=point.view_changes,
                               queue_drops=point.queue_drops)
    return result
