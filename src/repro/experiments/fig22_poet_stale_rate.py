"""Figure 22 (Appendix C.1): PoET versus PoET+ stale block rate.

Same runs as Figure 21, reporting the fraction of produced blocks that end up
off the main chain.  The paper reports PoET reaching ~15% stale blocks at
N = 128 while PoET+ stays around 3%.
"""

from __future__ import annotations

from typing import Sequence

from repro.consensus.poet import PoetNetworkConfig, run_poet_network
from repro.experiments.common import ExperimentResult
from repro.experiments.fig21_poet_throughput import _duration_for


def run(network_sizes: Sequence[int] = (2, 8, 32),
        block_sizes_mb: Sequence[float] = (2.0, 8.0),
        wait_scale: float = 240.0,
        seed: int = 0) -> ExperimentResult:
    """Reproduce Figure 22 (stale block rate)."""
    result = ExperimentResult(
        experiment_id="fig22",
        title="PoET and PoET+ stale block rate",
        columns=["series", "protocol", "block_size_mb", "n", "stale_rate", "total_blocks"],
        paper_reference="Figure 22",
        notes="Expected shape: stale rate grows with N and block size; PoET+ well below PoET.",
    )
    for block_size in block_sizes_mb:
        for n in network_sizes:
            for protocol, q_bits in (("PoET", 0), ("PoET+", PoetNetworkConfig.poet_plus_q_bits(n))):
                config = PoetNetworkConfig(
                    n=n, block_size_mb=block_size, wait_scale=wait_scale, q_bits=q_bits,
                )
                outcome = run_poet_network(config, duration=_duration_for(config), seed=seed)
                result.add_row(series=f"{protocol} {block_size:g}MB", protocol=protocol,
                               block_size_mb=block_size, n=n,
                               stale_rate=outcome.stale_rate,
                               total_blocks=outcome.total_blocks)
    return result
