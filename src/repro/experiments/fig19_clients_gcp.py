"""Figure 19 (Appendix C): throughput with a varying number of clients on GCP.

Two aggregate request rates (256 and 1024 requests/second) spread over a
growing number of clients; the committee runs on the 8-region WAN model.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, ExperimentScale, run_consensus_point

PROTOCOLS = ("HL", "AHL+", "AHLR")


def run(scale: Optional[ExperimentScale] = None,
        client_counts: Sequence[int] = (1, 4, 16, 64),
        request_rates: Sequence[float] = (256.0, 1024.0),
        n: int = 7) -> ExperimentResult:
    """Reproduce Figure 19 (throughput vs #clients at fixed aggregate request rates)."""
    scale = scale or ExperimentScale.quick()
    result = ExperimentResult(
        experiment_id="fig19",
        title="Throughput with varying workload on GCP",
        columns=["request_rate", "protocol", "clients", "throughput_tps", "avg_latency_s"],
        paper_reference="Figure 19",
        notes="Expected shape: throughput saturates once the offered rate exceeds capacity.",
    )
    for rate in request_rates:
        for protocol in PROTOCOLS:
            for clients in client_counts:
                per_client = max(1.0, rate / clients)
                point = run_consensus_point(protocol, n, scale, environment="gcp",
                                            clients=clients, client_rate=per_client)
                result.add_row(request_rate=rate, protocol=protocol, clients=clients,
                               throughput_tps=point.throughput_tps,
                               avg_latency_s=point.avg_latency)
    return result
