"""Figure 8: AHL+ versus HL / AHL / AHLR on the local cluster.

Left panel: throughput without failures as N grows — HL and AHL livelock at
large N (consensus messages dropped from the shared queue), while AHL+ and
AHLR keep several hundred tps.  Right panel: throughput as the number of
tolerated failures ``f`` grows, with Byzantine nodes sending conflicting
messages; note that HL needs ``N = 3f + 1`` nodes while the AHL family needs
``N = 2f + 1``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.consensus.base import ConsensusConfig
from repro.consensus.byzantine import EquivocatingAttacker
from repro.experiments.common import ExperimentResult, ExperimentScale, run_consensus_point

PROTOCOLS = ("HL", "AHL", "AHL+", "AHLR")


def _attacker_for(protocol: str, f: int, n: int) -> EquivocatingAttacker:
    """Corrupt the last f nodes of the committee (ids are contiguous from 0)."""
    corrupted = list(range(n - f, n))
    return EquivocatingAttacker(corrupted)


def run(scale: Optional[ExperimentScale] = None,
        network_sizes: Optional[Sequence[int]] = None,
        failure_counts: Sequence[int] = (1, 3, 5),
        environment: str = "cluster",
        high_load_rate: float = 600.0) -> ExperimentResult:
    """Reproduce Figure 8 (both panels) on the LAN model."""
    scale = scale or ExperimentScale.quick()
    network_sizes = network_sizes or scale.network_sizes
    result = ExperimentResult(
        experiment_id="fig08",
        title="AHL+ performance on the local cluster",
        columns=["panel", "protocol", "n", "f", "throughput_tps", "avg_latency_s",
                 "view_changes", "queue_drops"],
        paper_reference="Figure 8",
        notes=("Expected shape: all protocols comparable at small N; HL/AHL collapse at "
               "large N under load (queue drops / view changes) while AHL+ sustains "
               "throughput; AHL+ >= AHLR."),
    )
    for protocol in PROTOCOLS:
        for n in network_sizes:
            point = run_consensus_point(protocol, n, scale, environment=environment,
                                        client_rate=high_load_rate)
            config = ConsensusConfig(use_attested_log=(protocol != "HL"))
            result.add_row(panel="no_failures", protocol=protocol, n=n,
                           f=config.fault_tolerance(n),
                           throughput_tps=point.throughput_tps,
                           avg_latency_s=point.avg_latency,
                           view_changes=point.view_changes,
                           queue_drops=point.queue_drops)
    for protocol in PROTOCOLS:
        for f in failure_counts:
            n = 3 * f + 1 if protocol == "HL" else 2 * f + 1
            attacker = _attacker_for(protocol, f, n)
            point = run_consensus_point(protocol, n, scale, environment=environment,
                                        byzantine=attacker)
            result.add_row(panel="with_failures", protocol=protocol, n=n, f=f,
                           throughput_tps=point.throughput_tps,
                           avg_latency_s=point.avg_latency,
                           view_changes=point.view_changes,
                           queue_drops=point.queue_drops)
    return result
