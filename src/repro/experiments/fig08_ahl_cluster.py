"""Figure 8: AHL+ versus HL / AHL / AHLR on the local cluster.

Left panel: throughput without failures as N grows — HL and AHL livelock at
large N (consensus messages dropped from the shared queue), while AHL+ and
AHLR keep several hundred tps.  Right panel: throughput as the number of
tolerated failures ``f`` grows, with Byzantine nodes sending conflicting
messages; note that HL needs ``N = 3f + 1`` nodes while the AHL family needs
``N = 2f + 1``.

The failure panel runs on the **real system path**: a one-shard
:class:`~repro.core.system.ShardedBlockchain` with the system-wide adversary
knob placing ``f`` per-recipient equivocators (committee order, seeded), an
open-loop driver, and the :class:`~repro.audit.SafetyAuditor` attached — so
every reported point is a run the auditor certified fork-free, atomic and
money-conserving, not just a throughput number.  Each row carries the
audit verdict and the enclave's equivocation-refusal count (zero for HL,
which has no attested log and must verify-and-discard the conflicting votes
instead).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.audit import SafetyAuditor
from repro.consensus.base import ConsensusConfig
from repro.core.adversary import AdversaryConfig
from repro.core.config import ShardedSystemConfig
from repro.core.driver import OpenLoopDriver
from repro.core.system import ShardedBlockchain
from repro.experiments.common import ExperimentResult, ExperimentScale, run_consensus_point

PROTOCOLS = ("HL", "AHL", "AHL+", "AHLR")


def committee_size_for(protocol: str, f: int) -> int:
    """The smallest committee tolerating ``f`` faults under the protocol's model."""
    return 3 * f + 1 if protocol == "HL" else 2 * f + 1


def run_adversarial_point(protocol: str, f: int, scale: ExperimentScale,
                          strategy: str = "equivocate", seed: int = 0,
                          settle_seconds: float = 120.0,
                          environment: str = "cluster",
                          num_regions: int = 8) -> dict:
    """One (protocol, f) measurement of the failure panel on the full system.

    Builds a one-shard deployment of the minimum committee tolerating ``f``
    faults, corrupts ``f`` members through the adversary knob, drives it with
    a fixed open-loop Smallbank load for ``scale.duration`` seconds, then
    drains in-flight work and audits the run.
    """
    from repro.experiments.common import cluster_latency_model, gcp_regions

    n = committee_size_for(protocol, f)
    config = ShardedSystemConfig(
        num_shards=1, committee_size=n, protocol=protocol,
        use_reference_committee=False, benchmark="smallbank", num_keys=1_000,
        prepare_timeout=scale.view_change_timeout,
        latency_model=cluster_latency_model(environment, num_regions),
        regions=gcp_regions(num_regions) if environment == "gcp" else None,
        consensus_overrides={
            "batch_size": scale.batch_size,
            "view_change_timeout": scale.view_change_timeout,
            "queue_capacity": scale.queue_capacity,
        },
        seed=seed,
        adversary=AdversaryConfig(strategy=strategy, corrupted_per_shard=f),
    )
    system = ShardedBlockchain(config)
    auditor = SafetyAuditor(system)
    total_txs = int(scale.client_rate_tps * scale.duration)
    driver = OpenLoopDriver(system, rate_tps=scale.client_rate_tps,
                            max_transactions=total_txs, batch_size=10)
    driver.start()
    system.run(scale.duration)
    # Throughput is what committed inside the measurement window; the settle
    # phase that follows only drains the backlog so the quiescent invariants
    # (money conservation) can be audited — counting it would credit a
    # saturated protocol with work it finished after the bell.
    committed_in_window = driver.stats.committed
    auditor.settle(max_seconds=settle_seconds)
    report = auditor.check()
    observer = system.shards[0].honest_observer()
    return {
        "committed": committed_in_window,
        "committed_after_drain": driver.stats.committed,
        "aborted": driver.stats.aborted,
        "throughput_tps": committed_in_window / scale.duration,
        "avg_latency_s": driver.stats.mean_latency,
        "view_changes": int(system.monitor.counter_value("view_changes.shard0")),
        "queue_drops": sum(r.stats.messages_dropped_queue_full
                           for r in system.shards[0].replicas),
        "violations": len(report.violations),
        "equivocation_refusals": report.equivocation_refusals,
        "observer_height": observer.blockchain.height,
    }


def run(scale: Optional[ExperimentScale] = None,
        network_sizes: Optional[Sequence[int]] = None,
        failure_counts: Sequence[int] = (1, 3, 5),
        environment: str = "cluster",
        high_load_rate: float = 600.0) -> ExperimentResult:
    """Reproduce Figure 8 (both panels) on the LAN model."""
    scale = scale or ExperimentScale.quick()
    network_sizes = network_sizes or scale.network_sizes
    result = ExperimentResult(
        experiment_id="fig08",
        title="AHL+ performance on the local cluster",
        columns=["panel", "protocol", "n", "f", "throughput_tps", "avg_latency_s",
                 "view_changes", "queue_drops", "violations", "equivocation_refusals"],
        paper_reference="Figure 8",
        notes=("Expected shape: all protocols comparable at small N; HL/AHL collapse at "
               "large N under load (queue drops / view changes) while AHL+ sustains "
               "throughput; AHL+ >= AHLR.  Failure panel (real system path, audited): "
               "AHL-family committees of 2f+1 sustain committed throughput under f "
               "per-recipient equivocators — the enclave refuses the second digest — "
               "while HL pays for 3f+1 replicas verifying and discarding them."),
    )
    for protocol in PROTOCOLS:
        for n in network_sizes:
            point = run_consensus_point(protocol, n, scale, environment=environment,
                                        client_rate=high_load_rate)
            config = ConsensusConfig(use_attested_log=(protocol != "HL"))
            result.add_row(panel="no_failures", protocol=protocol, n=n,
                           f=config.fault_tolerance(n),
                           throughput_tps=point.throughput_tps,
                           avg_latency_s=point.avg_latency,
                           view_changes=point.view_changes,
                           queue_drops=point.queue_drops,
                           violations=None, equivocation_refusals=None)
    for protocol in PROTOCOLS:
        for f in failure_counts:
            point = run_adversarial_point(protocol, f, scale,
                                          environment=environment)
            result.add_row(panel="with_failures", protocol=protocol,
                           n=committee_size_for(protocol, f), f=f,
                           throughput_tps=point["throughput_tps"],
                           avg_latency_s=point["avg_latency_s"],
                           view_changes=point["view_changes"],
                           queue_drops=point["queue_drops"],
                           violations=point["violations"],
                           equivocation_refusals=point["equivocation_refusals"])
    return result
