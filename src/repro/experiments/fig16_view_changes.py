"""Figure 16 (Appendix C): number of view changes, normal case and worst case.

Normal case: no Byzantine nodes — view changes only happen when overload
causes timeouts (which is how HL/AHL livelock at large N).  Worst case:
``f`` Byzantine nodes that go silent whenever they hold the leader role,
forcing a view change per stalled instance.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.consensus.byzantine import SilentLeader
from repro.experiments.common import ExperimentResult, ExperimentScale, run_consensus_point

PROTOCOLS = ("HL", "AHL", "AHL+", "AHLR")


def run(scale: Optional[ExperimentScale] = None,
        network_sizes: Optional[Sequence[int]] = None,
        failure_counts: Sequence[int] = (1, 3, 5),
        high_load_rate: float = 600.0) -> ExperimentResult:
    """Reproduce Figure 16 (view-change counts)."""
    scale = scale or ExperimentScale.quick()
    network_sizes = network_sizes or scale.network_sizes
    result = ExperimentResult(
        experiment_id="fig16",
        title="Number of view changes (normal case and worst case)",
        columns=["panel", "protocol", "n", "f", "view_changes", "throughput_tps"],
        paper_reference="Figure 16",
        notes=("Expected shape: almost no view changes at small N; HL/AHL accumulate view "
               "changes as N grows under load; Byzantine leaders force view changes for "
               "every protocol."),
    )
    for protocol in PROTOCOLS:
        for n in network_sizes:
            point = run_consensus_point(protocol, n, scale, client_rate=high_load_rate)
            result.add_row(panel="normal_case", protocol=protocol, n=n, f=None,
                           view_changes=point.view_changes,
                           throughput_tps=point.throughput_tps)
    for protocol in PROTOCOLS:
        for f in failure_counts:
            n = 3 * f + 1 if protocol == "HL" else 2 * f + 1
            # Corrupt the first f nodes so the initial leader is Byzantine,
            # which is the worst case for the view-change count.
            attacker = SilentLeader(list(range(f)))
            point = run_consensus_point(protocol, n, scale, byzantine=attacker)
            result.add_row(panel="worst_case", protocol=protocol, n=n, f=f,
                           view_changes=point.view_changes,
                           throughput_tps=point.throughput_tps)
    return result
