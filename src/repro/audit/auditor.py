"""The safety auditor: global invariants over any sharded-system run.

The simulation's experiments report throughput; the *auditor* reports whether
the run was actually safe.  It subscribes to every replica's commit events
and every enclave's attested appends as the run executes (joiners admitted at
epoch boundaries are picked up through the cluster's member-admitted hook),
accumulates evidence, and :meth:`SafetyAuditor.check` turns that evidence
plus end-state inspection into a list of violations:

* **committed-prefix** — all honest replicas of a committee executed the
  same transactions in the same global order.  Each replica's committed
  stream is placed at its global offset (``_committed_before_join`` for
  members that installed a state snapshot mid-run), and the first writer of
  every position fixes the expected transaction; any later disagreement is a
  fork.  Honest observers' chains must also hash-verify.
* **cross-shard-atomicity** — per-shard decision logs: a transaction that
  executed its CommitTx on one shard must never execute its AbortTx on
  another (and vice versa).
* **money-conservation** — at quiescence the Smallbank balances across all
  shards sum to the initial endowment (checked only when the run is
  quiescent; use :meth:`settle` to drain in-flight work first).
* **attested-slot-uniqueness** — across each enclave's whole lifetime,
  including restarts, no (log, position) is ever bound to two digests.  The
  enclave enforces this internally *while it is honest and its state
  survives*; the auditor re-checks it from outside, which is what catches a
  broken rollback defence (a restarted enclave re-binding an old slot).
* **epoch-quorum-margin** — swap-batch epoch transitions must keep every
  committee's active-members-minus-quorum margin non-negative (the paper's
  liveness criterion; swap-all is expected to dip and is not flagged).

Memory: the auditor keeps one entry per committed transaction position and
per attested slot, i.e. it is meant for bounded audit runs (the adversarial
benchmark matrix, CI), not for unbounded soak tests.

The auditor never mutates the system: attaching it adds pure observers, so
an audited run commits the same blocks as an unaudited one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.consensus.base import CommitEvent, ConsensusReplica
from repro.core.system import REFERENCE_SHARD_ID, ShardedBlockchain
from repro.ledger.index import (
    ABORT_FUNCTIONS as _ABORT_FUNCTIONS,
    COMMIT_FUNCTIONS as _COMMIT_FUNCTIONS,
    rebuild_index,
    snapshot_diff,
)


@dataclass
class AuditViolation:
    """One broken invariant, with enough context to reproduce the claim."""

    check: str
    shard: Optional[int]
    detail: str

    def __str__(self) -> str:
        where = f"shard {self.shard}" if self.shard is not None else "system"
        return f"[{self.check}] {where}: {self.detail}"


@dataclass
class AuditReport:
    """Outcome of one :meth:`SafetyAuditor.check` call."""

    violations: List[AuditViolation]
    checks_run: List[str]
    blocks_audited: int = 0
    transactions_audited: int = 0
    attestations_recorded: int = 0
    equivocation_refusals: int = 0
    degraded_observer_reads: int = 0
    quiescent: bool = True
    #: Checks skipped (with reasons), e.g. money conservation on a run that
    #: never drained — skipping is reported, never silent.
    skipped: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        lines = [
            f"safety audit: {status} "
            f"({self.blocks_audited} blocks / {self.transactions_audited} tx positions / "
            f"{self.attestations_recorded} attested slots audited; "
            f"{self.equivocation_refusals} enclave refusals)"
        ]
        lines.extend(str(violation) for violation in self.violations)
        for check, reason in self.skipped.items():
            lines.append(f"[{check}] skipped: {reason}")
        return "\n".join(lines)


class SafetyAuditor:
    """Attach to a :class:`ShardedBlockchain` before running it."""

    CHECKS = (
        "committed-prefix",
        "cross-shard-atomicity",
        "money-conservation",
        "attested-slot-uniqueness",
        "epoch-quorum-margin",
    )

    def __init__(self, system: ShardedBlockchain) -> None:
        self.system = system
        #: The commit-time ledger index every O(delta) check reads from.
        self.index = system.enable_analytics()
        #: shard -> global position -> first-recorded transaction id.
        self._prefix: Dict[int, Dict[int, str]] = {}
        #: (shard, replica id) -> next global position of that replica's stream.
        self._positions: Dict[Tuple[int, int], int] = {}
        #: origin tx id -> set of (shard, "commit"/"abort") decision executions.
        self._decisions: Dict[str, Set[Tuple[int, str]]] = {}
        #: Violations detected while recording (fork / re-binding seen live).
        self._live_violations: List[AuditViolation] = []
        #: shard -> (observer node id, hash-verified height, hash there).
        #: The incremental chain check resumes from this marker; an observer
        #: switch or a marker mismatch forces one full re-verify.
        self._verified: Dict[int, Tuple[int, int, str]] = {}
        #: How many leading ``system.epoch_transitions`` entries are final
        #: (completed and already folded into ``_margin_violations``).
        self._margins_consumed = 0
        self._margin_violations: List[AuditViolation] = []
        self.blocks_audited = 0
        self.transactions_audited = 0
        self._attach()

    # ------------------------------------------------------------- attachment
    def _attach(self) -> None:
        # The engine-neutral way to reach the real shard clusters: the legacy
        # engine hands out its shards, the scale-out engine its inline
        # partitions' clusters (process mode refuses — its replicas live in
        # other address spaces; audit the bit-identical workers=1 run).
        self._clusters = self.system.audit_clusters()
        clusters = dict(self._clusters)
        if self.system.reference is not None:
            clusters[REFERENCE_SHARD_ID] = self.system.reference
        for shard_id, cluster in clusters.items():
            for replica in cluster.replicas:
                self._observe_replica(shard_id, replica)
            cluster.on_member_admitted(
                lambda replica, shard_id=shard_id:
                self._observe_replica(shard_id, replica))

    def _observe_replica(self, shard_id: int, replica: ConsensusReplica) -> None:
        replica.on_commit(lambda event, shard_id=shard_id, replica=replica:
                          self.observe_commit(shard_id, replica, event))
        log = getattr(replica, "attested_log", None)
        if log is not None:
            log.append_listener = self.observe_append

    # -------------------------------------------------------------- recording
    def observe_commit(self, shard_id: int, replica: ConsensusReplica,
                       event: CommitEvent) -> None:
        """Record one replica's block execution (called by the commit hook)."""
        self.blocks_audited += 1
        self._record_decisions(shard_id, event)
        if replica.byzantine is not None:
            # The agreement invariant protects honest replicas; a Byzantine
            # member's local chain is allowed to be garbage.
            return
        key = (shard_id, replica.node_id)
        position = self._positions.get(key)
        if position is None:
            # First block from this replica: members that installed a state
            # snapshot mid-run start at the snapshot's global offset.
            position = replica._committed_before_join
        prefix = self._prefix.setdefault(shard_id, {})
        for tx in event.block.transactions:
            expected = prefix.get(position)
            if expected is None:
                prefix[position] = tx.tx_id
                self.transactions_audited += 1
            elif expected != tx.tx_id:
                self._live_violations.append(AuditViolation(
                    "committed-prefix", shard_id,
                    f"replica {replica.node_id} executed {tx.tx_id} at global "
                    f"position {position}, but {expected} was committed there "
                    "first — honest replicas have forked"))
            position += 1
        self._positions[key] = position

    def _record_decisions(self, shard_id: int, event: CommitEvent) -> None:
        receipts = {receipt.tx_id: receipt for receipt in event.receipts}
        for tx in event.block.transactions:
            if tx.function in _COMMIT_FUNCTIONS:
                kind = "commit"
            elif tx.function in _ABORT_FUNCTIONS:
                kind = "abort"
            else:
                continue
            receipt = receipts.get(tx.tx_id)
            if receipt is None or not receipt.ok:
                continue
            origin = str(tx.args.get("tx_id", ""))
            executed = self._decisions.setdefault(origin, set())
            opposite = "abort" if kind == "commit" else "commit"
            if any(other_kind == opposite for _, other_kind in executed):
                self._live_violations.append(AuditViolation(
                    "cross-shard-atomicity", shard_id,
                    f"transaction {origin} executed {kind} on shard {shard_id} "
                    f"after {opposite} elsewhere: {sorted(executed)}"))
            executed.add((shard_id, kind))

    def observe_append(self, enclave_id: str, log_name: str, position: int,
                       digest: str) -> None:
        """Record one attested append (called by the enclave's listener).

        Slot storage lives in the ledger index (first-binding semantics);
        the auditor turns a conflicting re-binding into a violation.
        """
        bound = self.index.record_attestation(enclave_id, log_name, position, digest)
        if bound is not None and bound != digest:
            self._live_violations.append(AuditViolation(
                "attested-slot-uniqueness", None,
                f"enclave {enclave_id} bound log {log_name!r} position "
                f"{position} to a second digest ({bound[:12]}… then "
                f"{digest[:12]}…) — the rollback defence failed"))

    # ------------------------------------------------------------- quiescence
    def is_quiescent(self) -> bool:
        """Every transaction the coordinators began has completed."""
        stats = self.system.coordination_stats()
        return stats.started == stats.committed + stats.aborted

    def _progress_snapshot(self) -> tuple:
        stats = self.system.coordination_stats()
        per_shard = tuple(
            cluster.honest_observer().committed_transactions()
            for _, cluster in sorted(self._clusters.items()))
        return (stats.committed, stats.aborted, per_shard)

    def settle(self, max_seconds: float = 180.0, step: float = 0.5) -> bool:
        """Drain in-flight work so quiescent invariants can be checked.

        Advances the simulation in ``step`` slices until the coordinator has
        completed everything it began *and* per-shard execution has stopped
        advancing (lagging replicas may still be applying blocks after the
        last 2PC ack), or until ``max_seconds`` of simulated time pass.
        Returns whether quiescence was reached — a False return usually means
        the run lost liveness, which the caller should treat as a failure in
        its own right.
        """
        system = self.system
        sim = system.sim
        deadline = sim.now + max_seconds
        last_snapshot = None
        while sim.now < deadline:
            snapshot = self._progress_snapshot()
            if self.is_quiescent() and snapshot == last_snapshot:
                return True
            last_snapshot = snapshot
            if not system.pending_activity():
                return self.is_quiescent()
            system.advance(sim.now + step)
        return self.is_quiescent()

    # ----------------------------------------------------------------- checks
    def check(self, full_reverify: bool = False) -> AuditReport:
        """Evaluate every invariant and return the report.

        The default is **incremental**: each invariant consumes only what
        arrived since the previous ``check()`` — the chain check hash-verifies
        the new suffix past its per-shard marker, the money check reads the
        index's running balance drift, and the margin check folds in only
        newly-completed transitions — so a periodic auditor costs O(blocks
        since last check) per call instead of O(chain).
        ``full_reverify=True`` forces the original full-history forms (from
        genesis, full balance scan): the belt-and-suspenders mode for final
        reports, and the only mode that can catch out-of-band state tampering
        the committed receipts never saw.
        """
        violations = list(self._live_violations)
        skipped: Dict[str, str] = {}
        quiescent = self.is_quiescent()

        violations.extend(self._check_chains(full=full_reverify))
        if self.system.config.benchmark == "smallbank":
            if quiescent:
                violations.extend(self._check_money(full=full_reverify))
            else:
                skipped["money-conservation"] = (
                    "run is not quiescent (call settle() first); a mid-commit "
                    "cut is transiently unbalanced by design")
        else:
            skipped["money-conservation"] = "only defined for the smallbank benchmark"
        violations.extend(self._check_epoch_margins())

        refusals = 0
        degraded = 0
        clusters = list(self._clusters.values())
        if self.system.reference is not None:
            clusters.append(self.system.reference)
        for cluster in clusters:
            degraded += cluster.degraded_observer_reads
            for replica in cluster.replicas:
                log = getattr(replica, "attested_log", None)
                if log is not None:
                    refusals += log.rejected_appends

        return AuditReport(
            violations=violations,
            checks_run=list(self.CHECKS),
            blocks_audited=self.blocks_audited,
            transactions_audited=self.transactions_audited,
            attestations_recorded=self.index.attestations_recorded,
            equivocation_refusals=refusals,
            degraded_observer_reads=degraded,
            quiescent=quiescent,
            skipped=skipped,
        )

    def verify_index_rebuild(self) -> Tuple[bool, str]:
        """The differential oracle: rebuild the index from the chains and diff.

        Replays every observer chain from genesis through fresh execution
        engines (:func:`repro.ledger.index.rebuild_index`) and compares the
        result against the incrementally maintained index, bit for bit.
        Returns ``(identical, description)`` — the description names the
        first divergence if there is one.  Requires full block retention
        (raises :class:`repro.errors.ConfigurationError` on header-only chains, where
        receipts cannot be re-derived).
        """
        system = self.system
        observers = {shard_id: cluster.honest_observer()
                     for shard_id, cluster in self._clusters.items()}
        if system.reference is not None and REFERENCE_SHARD_ID not in observers:
            observers[REFERENCE_SHARD_ID] = system.reference.honest_observer()
        chains = {shard_id: observer.blockchain
                  for shard_id, observer in observers.items()}
        for shard_id, chain in sorted(chains.items()):
            pending = self.index.pending_heights(shard_id)
            if (pending or self.index.tip_height(shard_id) != chain.height
                    or self.index.tip_hash(shard_id) != chain.tip.block_hash):
                return False, (
                    f"shard {shard_id} commit stream is incomplete or follows "
                    f"a different replica's chain (index tip "
                    f"{self.index.tip_height(shard_id)} vs observer height "
                    f"{chain.height}, pending heights {pending}): the "
                    "incremental index cannot equal a rebuild of this chain")

        def registry_for(shard_id: int):
            if shard_id == REFERENCE_SHARD_ID:
                from repro.ledger.chaincode import ChaincodeRegistry
                from repro.txn.reference_committee import ReferenceCommitteeChaincode

                registry = ChaincodeRegistry()
                registry.register(ReferenceCommitteeChaincode())
                return registry
            return system._benchmark_registry()

        def populate(shard_id: int, state) -> None:
            observer = observers[shard_id]
            if observer._join_state_snapshot is not None:
                # The observer joined mid-run: its chain is rooted in the
                # state snapshot it installed, not in the genesis state, so
                # a faithful replay must start from that snapshot.
                state.restore(observer._join_state_snapshot)
            elif shard_id != REFERENCE_SHARD_ID:  # the reference starts empty
                system.populate_initial_state(shard_id, state)

        rebuilt = rebuild_index(chains, registry_for, populate=populate,
                                epoch_of=system.epochs.epoch_of,
                                account_history=self.index.history_enabled)
        diff = snapshot_diff(self.index.snapshot(), rebuilt.snapshot())
        if diff is None:
            return True, (f"incremental index == full rebuild across "
                          f"{self.index.blocks_indexed} blocks")
        return False, diff

    def _check_chains(self, full: bool = False) -> List[AuditViolation]:
        """Hash-verify each shard's observer chain (prefix check backstop).

        Incremental: per shard the auditor remembers which observer it
        verified, up to which height, and the block hash it saw there; the
        next check only verifies the suffix past that marker.  The marker is
        trusted only if the observer is the same replica and still carries
        the remembered hash at the remembered height — an observer switch
        (the old one crashed, lagged or departed) or a marker mismatch means
        this chain object was never verified, so it gets one full pass.  A
        failed verify never advances the marker: the violation re-fires on
        every later check instead of being absorbed.
        """
        violations = []
        for shard_id, cluster in self._clusters.items():
            observer = cluster.honest_observer()
            chain = observer.blockchain
            from_height = 0
            marker = self._verified.get(shard_id)
            if not full and marker is not None:
                node_id, height, block_hash = marker
                if (node_id == observer.node_id and height <= chain.height
                        and chain.header_at(height).block_hash == block_hash):
                    from_height = height
            if not chain.verify_suffix(from_height):
                violations.append(AuditViolation(
                    "committed-prefix", shard_id,
                    f"replica {observer.node_id}'s chain fails hash "
                    f"verification (from height {from_height})"))
                continue
            self._verified[shard_id] = (observer.node_id, chain.height,
                                        chain.tip.block_hash)
        return violations

    def _check_money(self, full: bool = False) -> List[AuditViolation]:
        """Money conservation: O(1) off the index, or the full balance scan.

        The incremental form reads the index's running balance drift (every
        committed delta minus every legitimate mint — exact, maintained at
        commit time).  The full scan re-reads all ``num_keys`` balances from
        the observers' state stores; it is the only form that can catch
        tampering applied *behind* consensus (state mutated with no
        committed receipt), and the automatic fallback when the index did
        not see the whole history (mid-run attach, gaps, or an index that
        trails the observer chains).
        """
        if not full and self.index.balances_exact() and self._index_synced():
            drift = self.index.balance_drift()
            if drift != 0:
                return [AuditViolation(
                    "money-conservation", None,
                    f"committed balance deltas net to {drift:+d} after mints "
                    f"across {self.index.blocks_indexed} indexed blocks — "
                    "money was created or destroyed on-chain")]
            return []
        from repro.workloads.smallbank import initial_balances

        system = self.system
        balances = initial_balances(system.config.num_keys)
        expected = sum(balances.values())
        total = 0
        for key in balances:  # initial_balances maps state keys -> endowment
            shard = self._clusters[system.shard_of_key(key)]
            total += shard.honest_observer().state.get(key, 0)
        if total != expected:
            return [AuditViolation(
                "money-conservation", None,
                f"balances sum to {total}, expected {expected} "
                f"(drift {total - expected:+d}) at quiescence")]
        return []

    def _index_synced(self) -> bool:
        """Whether the index covers every benchmark shard's full history.

        Requires, per shard, an observer whose chain is rooted in the
        genesis state (a joiner's chain starts from a mid-run state
        snapshot, so its deltas only cover a suffix of history and cannot
        prove conservation) and an index tip that matches that observer's —
        a prefix-only index (commit reports stopped, or the observer
        switched to a chain the index was not following) has exact
        *per-block* materializations but an incomplete total.  Either way
        the quiescent whole-system sum falls back to the full scan.
        """
        for shard_id, cluster in self._clusters.items():
            if shard_id == REFERENCE_SHARD_ID:
                continue  # the reference committee holds no benchmark state
            observer = cluster.honest_observer()
            chain = observer.blockchain
            if (observer._committed_before_join > 0
                    or self.index.tip_height(shard_id) != chain.height
                    or self.index.tip_hash(shard_id) != chain.tip.block_hash):
                return False
        return True

    def _margin_violations_for(self,
                               transition) -> List[AuditViolation]:
        if transition.strategy != "swap-batch":
            return []  # swap-all gives up the quorum by design
        violations = []
        for shard_id, margin in sorted(transition.min_active_margin.items()):
            if margin < 0:
                violations.append(AuditViolation(
                    "epoch-quorum-margin", shard_id,
                    f"epoch {transition.epoch} swap-batch transition left "
                    f"the committee {-margin} member(s) short of its "
                    "quorum"))
        return violations

    def _check_epoch_margins(self) -> List[AuditViolation]:
        """Quorum margins, incrementally: finished transitions fold in once.

        The contiguous prefix of *completed* transitions is consumed exactly
        once (its violations persist in ``_margin_violations`` and re-appear
        in every later report); anything after it — an in-progress
        transition whose margins are still moving — is re-scanned each call
        without being consumed.
        """
        transitions = self.system.epoch_transitions
        consumed = self._margins_consumed
        while (consumed < len(transitions)
               and transitions[consumed].completed_at is not None):
            self._margin_violations.extend(
                self._margin_violations_for(transitions[consumed]))
            consumed += 1
        self._margins_consumed = consumed
        pending: List[AuditViolation] = []
        for transition in transitions[consumed:]:
            pending.extend(self._margin_violations_for(transition))
        return list(self._margin_violations) + pending
