"""Run-time safety auditing for sharded-system runs.

:class:`~repro.audit.auditor.SafetyAuditor` attaches to a live
:class:`~repro.core.system.ShardedBlockchain` and checks the global
invariants the paper's design promises to keep *under attack* — committed-
prefix agreement inside every committee, cross-shard commit/abort atomicity,
money conservation at quiescence, one digest per attested slot, and per-epoch
quorum margins.
"""

from repro.audit.auditor import AuditReport, AuditViolation, SafetyAuditor

__all__ = ["AuditReport", "AuditViolation", "SafetyAuditor"]
