"""Baselines the paper compares against.

* :mod:`repro.baselines.randhound` — a cost model and protocol-round
  simulation of RandHound, OmniLedger's distributed randomness protocol,
  used by the Figure-11 comparison.
* :mod:`repro.baselines.omniledger_sizing` — committee sizing under the
  classic ``3f + 1`` failure model (OmniLedger / Elastico), for the
  committee-size comparison in Figure 11 (left).
"""

from repro.baselines.randhound import RandHoundConfig, randhound_running_time, simulate_randhound
from repro.baselines.omniledger_sizing import omniledger_committee_size

__all__ = [
    "RandHoundConfig",
    "randhound_running_time",
    "simulate_randhound",
    "omniledger_committee_size",
]
