"""Committee sizing under the classic 3f+1 failure model (OmniLedger / Elastico).

OmniLedger and Elastico run plain BFT inside each committee, so a committee
of size ``n`` only tolerates ``(n - 1) / 3`` Byzantine members and needs 600+
members to stay safe against a 25% adversary (Section 5.2).  This is simply
:func:`repro.sharding.sizing.minimum_committee_size` with resilience 1/3,
wrapped for convenience in the Figure-11 comparison.
"""

from __future__ import annotations

from repro.sharding.sizing import DEFAULT_FAILURE_TARGET, minimum_committee_size


def omniledger_committee_size(network_size: int, byzantine_fraction: float,
                              failure_target: float = DEFAULT_FAILURE_TARGET) -> int:
    """Minimum committee size for OmniLedger-style (1/3-resilient) committees."""
    return minimum_committee_size(
        network_size, byzantine_fraction, resilience=1.0 / 3.0,
        failure_target=failure_target,
    )


def ours_committee_size(network_size: int, byzantine_fraction: float,
                        failure_target: float = DEFAULT_FAILURE_TARGET) -> int:
    """Minimum committee size for AHL+-backed (1/2-resilient) committees."""
    return minimum_committee_size(
        network_size, byzantine_fraction, resilience=1.0 / 2.0,
        failure_target=failure_target,
    )
