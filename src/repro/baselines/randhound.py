"""RandHound cost model (Figure 11 right).

RandHound (Syta et al.) produces bias-resistant distributed randomness by
partitioning the ``N`` participants into groups of size ``c`` (the paper uses
``c = 16``, the value OmniLedger suggests) and running publicly verifiable
secret sharing inside each group, coordinated by a leader.  Its communication
and computation are ``O(N * c^2)``, versus ``O(N log N)`` for the TEE-based
beacon, which is why the paper measures a 21-32x running-time gap.

The model below reproduces the protocol's round structure (PVSS share
distribution, secret commitment collection, aggregation and verification)
with per-operation costs from the same cost table used elsewhere, and adds
the network round trips; it is calibrated so that the relative gap against
our beacon protocol matches the paper's measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.crypto.costs import DEFAULT_COSTS, OperationCosts
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RandHoundConfig:
    """RandHound parameters.

    ``group_size`` is OmniLedger's suggested ``c = 16``;
    ``pvss_share_cost`` is the cost of creating or verifying one PVSS share
    (an elliptic-curve heavy operation, several times an ECDSA verification).
    """

    group_size: int = 16
    pvss_share_cost: float = 8.0e-3
    commitment_cost: float = 1.2e-3
    rounds: int = 4
    costs: OperationCosts = DEFAULT_COSTS

    def __post_init__(self) -> None:
        if self.group_size < 2:
            raise ConfigurationError("RandHound group size must be at least 2")


def randhound_running_time(network_size: int, round_trip: float,
                           config: RandHoundConfig | None = None) -> float:
    """Expected wall-clock time of one RandHound run on ``network_size`` nodes.

    The leader's work dominates: it verifies ``O(N * c)`` PVSS shares and
    ``O(N)`` commitments, and the protocol needs ``rounds`` sequential network
    round trips.
    """
    if network_size < 2:
        raise ConfigurationError("RandHound needs at least 2 nodes")
    config = config or RandHoundConfig()
    c = config.group_size
    num_groups = max(1, math.ceil(network_size / c))
    # Each group member creates c shares and verifies c shares from each of
    # the other members of its group.
    per_member_compute = c * config.pvss_share_cost + c * config.pvss_share_cost
    # The leader aggregates every group's contribution: N commitments plus a
    # share matrix of size roughly N * c, all of which it must verify.
    leader_compute = (network_size * config.commitment_cost
                      + network_size * c * config.pvss_share_cost)
    network_time = config.rounds * round_trip
    return per_member_compute + leader_compute + network_time


def simulate_randhound(network_size: int, round_trip: float,
                       config: RandHoundConfig | None = None,
                       failure_rate: float = 0.0, seed: int = 0) -> dict:
    """A light protocol-round simulation returning timing and message counts.

    ``failure_rate`` is the fraction of group leaders that time out in round
    one and must be replaced (each replacement costs one extra round trip).
    """
    import random

    config = config or RandHoundConfig()
    rng = random.Random(seed)
    c = config.group_size
    num_groups = max(1, math.ceil(network_size / c))
    retries = sum(1 for _ in range(num_groups) if rng.random() < failure_rate)
    base_time = randhound_running_time(network_size, round_trip, config)
    total_time = base_time + retries * round_trip
    messages = num_groups * c * c + network_size * 2
    return {
        "network_size": network_size,
        "group_size": c,
        "num_groups": num_groups,
        "running_time": total_time,
        "messages": messages,
        "leader_retries": retries,
    }
